"""The √c-walk engine: compacted per-walk and count-aggregated simulation.

A √c-walk (paper §2, "MC") is a random walk on the *reverse* edges of the
graph: at each step it moves to a uniformly random in-neighbour with
probability √c and stops with probability 1 − √c; it also stops when the
current node has no in-neighbour.  SimRank is the probability that two
independent √c-walks started from the two query nodes visit the same node at
the same step (eq. 2), and the diagonal correction matrix is
D(k, k) = 1 − Pr[two √c-walks from k meet at step ≥ 1].

Two mechanisms keep the simulation cost proportional to the *live* work
instead of the batch width:

* **Alive compaction** — the trajectory-recording paths
  (:meth:`SqrtCWalkEngine.walks_from`, :meth:`~SqrtCWalkEngine.walks_from_nodes`)
  keep an index array of walks that are still alive, advance only those, and
  scatter positions back into the trajectory matrix.  Under the √c decay the
  live set shrinks geometrically, so the total step cost is
  O(Σ_t alive_t) ≈ O(num_walks / (1 − √c)) instead of
  O(num_walks · max_steps).
* **Count aggregation** — the observable-only paths (visit counts, pair
  meetings) never need walk identities, so walks occupying the same state
  collapse into ``(state, count)`` pairs advanced with binomial/multinomial
  draws by the kernels in :mod:`repro.randomwalk.aggregate`.  The per-step
  cost is bounded by the number of *distinct occupied states*, which makes
  the single-source ``num_walks ≫ |reachable set|`` regimes of ExactSim's
  phase 2 and the diagonal estimators orders of magnitude cheaper.

The pre-compaction full-width engine survives as
:class:`repro.randomwalk.reference.ReferenceWalkEngine` — the executable
specification the statistical-equivalence tests pin this engine against.
Seeded runs of this engine are deterministic (same seed ⇒ bit-identical
results), but the RNG consumption pattern differs from the reference engine,
so the two produce different (equally distributed) sample paths.
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from repro.graph.digraph import DiGraph
from repro.randomwalk.aggregate import advance_frontier, group_sum, pair_meet_counts
from repro.randomwalk.walkbatch import WalkBatch
from repro.utils.deadline import CHECKPOINT_WALK_BATCH, checkpoint
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_node_index, check_positive_int, check_probability

#: Per-step occupancy of an aggregated walk ensemble: (occupied nodes, counts).
CountFrontier = Tuple[np.ndarray, np.ndarray]


class SqrtCWalkEngine:
    """Compacted / count-aggregated simulation of √c-walks on a :class:`DiGraph`.

    Parameters
    ----------
    graph:
        The graph to walk on (walks move to *in*-neighbours).
    decay:
        The SimRank decay factor ``c``; the per-step survival probability is
        ``√c``.
    seed:
        Seed or generator for reproducible simulation.
    """

    def __init__(self, graph: DiGraph, decay: float = 0.6, *, seed: SeedLike = None):
        self.graph = graph
        self.decay = check_probability(decay, "decay", inclusive_low=False, inclusive_high=False)
        self.sqrt_c = float(np.sqrt(self.decay))
        self.rng = ensure_rng(seed)
        self._indptr = graph.in_indptr
        self._indices = graph.in_indices
        self._in_degrees = graph.in_degrees

    # ------------------------------------------------------------------ #
    # compacted trajectory simulation
    # ------------------------------------------------------------------ #
    def _record_walks(self, start: np.ndarray, max_steps: int) -> WalkBatch:
        """Compacted simulation of one √c-walk per ``start`` entry.

        Only live walks flip coins and draw neighbours: ``alive`` holds the
        original walk indices of the survivors and ``current`` their compacted
        positions, so each step costs O(alive) array work.
        """
        num_walks = start.shape[0]
        positions = np.full((max_steps + 1, num_walks), -1, dtype=np.int64)
        positions[0] = start
        lengths = np.zeros(num_walks, dtype=np.int64)
        alive = np.arange(num_walks, dtype=np.int64)
        current = start.copy()
        for step in range(1, max_steps + 1):
            if alive.size == 0:
                break
            checkpoint(CHECKPOINT_WALK_BATCH)
            survive = self.rng.random(alive.shape[0]) < self.sqrt_c
            alive, current = alive[survive], current[survive]
            movable = self._in_degrees[current] > 0
            alive, current = alive[movable], current[movable]
            if alive.size == 0:
                break
            degrees = self._in_degrees[current]
            offsets = (self.rng.random(current.shape[0]) * degrees).astype(np.int64)
            current = self._indices[self._indptr[current] + offsets]
            positions[step, alive] = current
            lengths[alive] = step
        return WalkBatch(positions=positions, lengths=lengths)

    def walks_from(self, node: int, num_walks: int, *, max_steps: int = 64) -> WalkBatch:
        """Simulate ``num_walks`` √c-walks from ``node`` recording full trajectories."""
        node = check_node_index(node, self.graph.num_nodes)
        num_walks = check_positive_int(num_walks, "num_walks")
        max_steps = check_positive_int(max_steps, "max_steps")
        return self._record_walks(np.full(num_walks, node, dtype=np.int64), max_steps)

    def walks_from_nodes(self, nodes: np.ndarray, *, max_steps: int = 64) -> WalkBatch:
        """Simulate one √c-walk per entry of ``nodes`` (entries may repeat)."""
        start = np.asarray(nodes, dtype=np.int64)
        if start.ndim != 1:
            raise ValueError("nodes must be a one-dimensional array of start nodes")
        if start.size and (start.min() < 0 or start.max() >= self.graph.num_nodes):
            raise ValueError("start node out of range")
        return self._record_walks(start.copy(), max_steps)

    def terminal_nodes(self, node: int, num_walks: int, steps: int) -> np.ndarray:
        """Positions after exactly ``steps`` non-stopping moves (−1 at dead ends).

        Used by Algorithm 3: walks that survive their ``ℓ(k)``-step non-stop
        prefix continue as fresh √c-walks from wherever they are.
        """
        node = check_node_index(node, self.graph.num_nodes)
        finals = np.full(num_walks, -1, dtype=np.int64)
        alive = np.arange(num_walks, dtype=np.int64)
        current = np.full(num_walks, node, dtype=np.int64)
        for _ in range(steps):
            if alive.size == 0:
                break
            checkpoint(CHECKPOINT_WALK_BATCH)
            movable = self._in_degrees[current] > 0
            alive, current = alive[movable], current[movable]
            if alive.size == 0:
                break
            degrees = self._in_degrees[current]
            offsets = (self.rng.random(current.shape[0]) * degrees).astype(np.int64)
            current = self._indices[self._indptr[current] + offsets]
        finals[alive] = current
        return finals

    # ------------------------------------------------------------------ #
    # count-aggregated ensemble simulation
    # ------------------------------------------------------------------ #
    def visit_count_steps(self, start_nodes: np.ndarray, start_counts: np.ndarray,
                          *, max_steps: int = 64) -> List[CountFrontier]:
        """Aggregated per-step occupancy of a pooled √c-walk ensemble.

        ``start_counts[i]`` walks start at ``start_nodes[i]``; the returned
        list holds one ``(nodes, counts)`` frontier per step ``0 … t_max``
        (``counts`` sums to the number of walks still alive at that step; the
        list stops early once every walk has died).  Walk identities are never
        materialised, so the cost per step is bounded by the number of
        distinct occupied nodes — the aggregation win for the
        ``num_walks ≫ |reachable set|`` sampling regimes.
        """
        nodes = np.asarray(start_nodes, dtype=np.int64)
        counts = np.asarray(start_counts, dtype=np.int64)
        if nodes.shape != counts.shape or nodes.ndim != 1:
            raise ValueError("start_nodes and start_counts must be matching 1-d arrays")
        if nodes.size and (nodes.min() < 0 or nodes.max() >= self.graph.num_nodes):
            raise ValueError("start node out of range")
        if np.any(counts < 0):
            raise ValueError("start_counts must be non-negative")
        live = counts > 0
        (nodes,), counts = group_sum(counts[live], nodes[live])
        levels: List[CountFrontier] = [(nodes, counts)]
        for _ in range(max_steps):
            if nodes.size == 0:
                break
            checkpoint(CHECKPOINT_WALK_BATCH)
            nodes, counts = advance_frontier(
                self.rng, self._indptr, self._indices, self._in_degrees,
                nodes, counts, self.sqrt_c)
            if nodes.size == 0:
                break
            levels.append((nodes, counts))
        return levels

    def estimate_visit_distribution(self, node: int, num_walks: int, *,
                                    max_steps: int = 16) -> np.ndarray:
        """Empirical ℓ-hop visiting distribution of √c-walks from ``node``.

        Row ``ℓ`` of the returned ``(max_steps + 1, n)`` array estimates
        Pr[the walk is alive at step ℓ and located at node k], i.e. the ℓ-hop
        hitting-probability vector ``(√c P)^ℓ e_node``.  Runs on the
        count-aggregated frontier.
        """
        node = check_node_index(node, self.graph.num_nodes)
        num_walks = check_positive_int(num_walks, "num_walks")
        levels = self.visit_count_steps(np.array([node], dtype=np.int64),
                                        np.array([num_walks], dtype=np.int64),
                                        max_steps=max_steps)
        histogram = np.zeros((max_steps + 1, self.graph.num_nodes), dtype=np.float64)
        for step, (nodes, counts) in enumerate(levels):
            histogram[step, nodes] = counts
        return histogram / float(num_walks)

    # ------------------------------------------------------------------ #
    # aggregated pair meetings
    # ------------------------------------------------------------------ #
    def pair_meet_counts(self, start_nodes: np.ndarray, pair_counts: np.ndarray, *,
                         max_steps: int = 64,
                         skip_steps: Union[int, np.ndarray] = 0) -> np.ndarray:
        """How many of ``pair_counts[p]`` walk pairs from ``start_nodes[p]`` meet.

        Both walks of every pair start at the origin's node; entry ``p`` of
        the result counts the pairs that meet at some step ≥ 1 (strictly
        after the per-origin non-stop prefix when ``skip_steps`` is set —
        pairs meeting inside the prefix are disqualified, matching the
        Algorithm 3 tail-estimator semantics).  One aggregated simulation
        serves all origins at once.
        """
        starts = np.asarray(start_nodes, dtype=np.int64)
        return self.pair_meet_counts_from(starts, starts, pair_counts,
                                          max_steps=max_steps, skip_steps=skip_steps)

    def pair_meet_counts_from(self, first_nodes: np.ndarray, second_nodes: np.ndarray,
                              pair_counts: np.ndarray, *, max_steps: int = 64,
                              skip_steps: Union[int, np.ndarray] = 0) -> np.ndarray:
        """General form of :meth:`pair_meet_counts` with distinct start pairs.

        Entry ``p`` simulates ``pair_counts[p]`` pairs with the first walk
        from ``first_nodes[p]`` and the second from ``second_nodes[p]`` — the
        eq. (2) estimator for S(i, j) uses one ``(i, j)`` origin.
        """
        first = np.asarray(first_nodes, dtype=np.int64)
        second = np.asarray(second_nodes, dtype=np.int64)
        counts = np.asarray(pair_counts, dtype=np.int64)
        if not (first.shape == second.shape == counts.shape) or first.ndim != 1:
            raise ValueError("start and count arrays must be matching 1-d arrays")
        for arr in (first, second):
            if arr.size and (arr.min() < 0 or arr.max() >= self.graph.num_nodes):
                raise ValueError("start node out of range")
        if np.any(counts < 0):
            raise ValueError("pair_counts must be non-negative")
        skip = np.broadcast_to(np.asarray(skip_steps, dtype=np.int64), first.shape)
        if np.any(skip < 0):
            raise ValueError("skip_steps must be non-negative")
        return pair_meet_counts(self.rng, self._indptr, self._indices,
                                self._in_degrees, self.decay, first, second,
                                counts, max_steps=max_steps,
                                skip_steps=np.ascontiguousarray(skip))

    # ------------------------------------------------------------------ #
    # mask-shaped compatibility wrappers
    # ------------------------------------------------------------------ #
    def pair_walks_meet(self, node: int, num_pairs: int, *, max_steps: int = 64,
                        skip_steps: int = 0) -> np.ndarray:
        """Boolean meet mask over ``num_pairs`` pairs of walks from ``node``.

        Backed by the aggregated :meth:`pair_meet_counts`; pairs are
        exchangeable, so the mask's only meaningful statistic is its sum — the
        first ``met`` entries are set.  Prefer :meth:`pair_meet_counts` in new
        code.
        """
        node = check_node_index(node, self.graph.num_nodes)
        num_pairs = check_positive_int(num_pairs, "num_pairs")
        met = int(self.pair_meet_counts(
            np.array([node], dtype=np.int64), np.array([num_pairs], dtype=np.int64),
            max_steps=max_steps, skip_steps=skip_steps)[0])
        mask = np.zeros(num_pairs, dtype=bool)
        mask[:met] = True
        return mask

    def pair_walks_meet_batch(self, start_nodes: np.ndarray, *,
                              max_steps: int = 64) -> np.ndarray:
        """Meet mask for one pair of √c-walks per entry of ``start_nodes``.

        Duplicated start entries collapse into one origin with a pair count
        before simulation (pairs from the same node are exchangeable), so the
        cost matches one aggregated :meth:`pair_meet_counts` call over the
        unique start nodes; the per-origin meet counts are then scattered
        back onto the first entries of each group.  Prefer
        :meth:`pair_meet_counts` in new code.
        """
        start = np.asarray(start_nodes, dtype=np.int64)
        if start.ndim != 1:
            raise ValueError("start_nodes must be one-dimensional")
        if start.size == 0:
            return np.zeros(0, dtype=bool)
        if start.min() < 0 or start.max() >= self.graph.num_nodes:
            raise ValueError("start node out of range")
        unique, inverse = np.unique(start, return_inverse=True)
        totals = np.bincount(inverse, minlength=unique.shape[0]).astype(np.int64)
        met_counts = self.pair_meet_counts(unique, totals, max_steps=max_steps)
        order = np.argsort(inverse, kind="stable")
        group_offsets = np.concatenate(([0], np.cumsum(totals)[:-1]))
        ranks = np.arange(start.shape[0], dtype=np.int64) - group_offsets[inverse[order]]
        mask = np.zeros(start.shape[0], dtype=bool)
        mask[order[ranks < met_counts[inverse[order]]]] = True
        return mask


__all__ = ["CountFrontier", "SqrtCWalkEngine", "WalkBatch"]
