"""The √c-walk engine.

A √c-walk (paper §2, "MC") is a random walk on the *reverse* edges of the
graph: at each step it moves to a uniformly random in-neighbour with
probability √c and stops with probability 1 − √c; it also stops when the
current node has no in-neighbour.  SimRank is the probability that two
independent √c-walks started from the two query nodes visit the same node at
the same step (eq. 2), and the diagonal correction matrix is
D(k, k) = 1 − Pr[two √c-walks from k meet at step ≥ 1].

Pure-Python per-step loops are far too slow for the sample counts the paper
needs (the ``repro_why`` note for this reproduction), so the engine advances
*all walks of a batch simultaneously* with NumPy: one vectorised step costs a
handful of array operations regardless of how many thousands of walkers are
alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.digraph import DiGraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_node_index, check_probability, check_positive_int


@dataclass
class WalkBatch:
    """Trajectories of a batch of √c-walks.

    ``positions[t]`` holds the node index of every walk at step ``t`` and is
    ``-1`` once the walk has stopped.  ``lengths[w]`` is the number of steps
    walk ``w`` made before stopping (0 means it stopped immediately).
    """

    positions: np.ndarray          # shape (max_steps + 1, num_walks)
    lengths: np.ndarray            # shape (num_walks,)

    @property
    def num_walks(self) -> int:
        return int(self.positions.shape[1])

    @property
    def max_steps(self) -> int:
        return int(self.positions.shape[0] - 1)

    def nodes_at(self, step: int) -> np.ndarray:
        """Node of every walk at ``step`` (−1 for stopped walks)."""
        if step < 0 or step > self.max_steps:
            raise ValueError(f"step {step} outside recorded range 0..{self.max_steps}")
        return self.positions[step]

    def visit_counts(self, num_nodes: int) -> np.ndarray:
        """How many (walk, step) pairs visited each node (stopped steps excluded)."""
        flat = self.positions[self.positions >= 0]
        return np.bincount(flat, minlength=num_nodes)

    def memory_bytes(self) -> int:
        return int(self.positions.nbytes + self.lengths.nbytes)


class SqrtCWalkEngine:
    """Vectorised simulation of √c-walks on a :class:`DiGraph`.

    Parameters
    ----------
    graph:
        The graph to walk on (walks move to *in*-neighbours).
    decay:
        The SimRank decay factor ``c``; the per-step survival probability is
        ``√c``.
    seed:
        Seed or generator for reproducible simulation.
    """

    def __init__(self, graph: DiGraph, decay: float = 0.6, *, seed: SeedLike = None):
        self.graph = graph
        self.decay = check_probability(decay, "decay", inclusive_low=False, inclusive_high=False)
        self.sqrt_c = float(np.sqrt(self.decay))
        self.rng = ensure_rng(seed)
        self._indptr = graph.in_indptr
        self._indices = graph.in_indices
        self._in_degrees = graph.in_degrees

    # ------------------------------------------------------------------ #
    # single-step kernel
    # ------------------------------------------------------------------ #
    def _advance(self, current: np.ndarray, survive: np.ndarray) -> np.ndarray:
        """Advance live walks one step; returns the new positions (−1 = stopped).

        ``current`` holds node ids with −1 marking already-stopped walks;
        ``survive`` is a boolean array saying which walks won the √c coin flip
        this step.
        """
        next_positions = np.full_like(current, -1)
        alive = (current >= 0) & survive
        if not alive.any():
            return next_positions
        nodes = current[alive]
        degrees = self._in_degrees[nodes]
        movable = degrees > 0
        if movable.any():
            mover_nodes = nodes[movable]
            mover_degrees = degrees[movable]
            offsets = (self.rng.random(mover_nodes.shape[0]) * mover_degrees).astype(np.int64)
            destinations = self._indices[self.graph.in_indptr[mover_nodes] + offsets]
            alive_idx = np.flatnonzero(alive)
            next_positions[alive_idx[movable]] = destinations
        return next_positions

    # ------------------------------------------------------------------ #
    # public simulation APIs
    # ------------------------------------------------------------------ #
    def walks_from(self, node: int, num_walks: int, *, max_steps: int = 64) -> WalkBatch:
        """Simulate ``num_walks`` √c-walks from ``node`` recording full trajectories."""
        node = check_node_index(node, self.graph.num_nodes)
        num_walks = check_positive_int(num_walks, "num_walks")
        max_steps = check_positive_int(max_steps, "max_steps")

        positions = np.full((max_steps + 1, num_walks), -1, dtype=np.int64)
        positions[0] = node
        lengths = np.zeros(num_walks, dtype=np.int64)
        current = positions[0].copy()
        for step in range(1, max_steps + 1):
            if not (current >= 0).any():
                break
            survive = self.rng.random(num_walks) < self.sqrt_c
            current = self._advance(current, survive)
            positions[step] = current
            lengths[current >= 0] = step
        return WalkBatch(positions=positions, lengths=lengths)

    def walks_from_nodes(self, nodes: np.ndarray, *, max_steps: int = 64) -> WalkBatch:
        """Simulate one √c-walk per entry of ``nodes`` (entries may repeat)."""
        start = np.asarray(nodes, dtype=np.int64)
        if start.ndim != 1:
            raise ValueError("nodes must be a one-dimensional array of start nodes")
        if start.size and (start.min() < 0 or start.max() >= self.graph.num_nodes):
            raise ValueError("start node out of range")
        num_walks = start.shape[0]
        positions = np.full((max_steps + 1, num_walks), -1, dtype=np.int64)
        positions[0] = start
        lengths = np.zeros(num_walks, dtype=np.int64)
        current = start.copy()
        for step in range(1, max_steps + 1):
            if not (current >= 0).any():
                break
            survive = self.rng.random(num_walks) < self.sqrt_c
            current = self._advance(current, survive)
            positions[step] = current
            lengths[current >= 0] = step
        return WalkBatch(positions=positions, lengths=lengths)

    def pair_walks_meet(self, node: int, num_pairs: int, *, max_steps: int = 64,
                        skip_steps: int = 0) -> np.ndarray:
        """Simulate ``num_pairs`` *pairs* of walks from ``node``; return a meet mask.

        A pair "meets" if the two walks occupy the same node at the same step
        ``t ≥ 1`` while both are still alive.  With ``skip_steps > 0`` the
        walks do not flip the stopping coin during their first ``skip_steps``
        steps (they stop only at dead ends) — this is the "non-stop prefix"
        behaviour Algorithm 3 needs for estimating the tail
        Σ_{ℓ>ℓ(k)} Z_ℓ(k).  In that mode a pair whose walks already met during
        the prefix is excluded (its first meeting belongs to the
        deterministically computed part), and only meetings strictly after the
        prefix are reported.
        """
        node = check_node_index(node, self.graph.num_nodes)
        num_pairs = check_positive_int(num_pairs, "num_pairs")

        first = np.full(num_pairs, node, dtype=np.int64)
        second = np.full(num_pairs, node, dtype=np.int64)
        met = np.zeros(num_pairs, dtype=bool)
        met_in_prefix = np.zeros(num_pairs, dtype=bool)
        for step in range(1, max_steps + 1):
            active = (first >= 0) & (second >= 0) & ~met
            if not active.any():
                break
            if step <= skip_steps:
                survive_first = np.ones(num_pairs, dtype=bool)
                survive_second = np.ones(num_pairs, dtype=bool)
            else:
                survive_first = self.rng.random(num_pairs) < self.sqrt_c
                survive_second = self.rng.random(num_pairs) < self.sqrt_c
            first = self._advance(first, survive_first)
            second = self._advance(second, survive_second)
            same_node = (first >= 0) & (first == second)
            if step <= skip_steps:
                met_in_prefix |= same_node
            else:
                met |= same_node & ~met_in_prefix
        return met

    def pair_walks_meet_batch(self, start_nodes: np.ndarray, *,
                              max_steps: int = 64) -> np.ndarray:
        """Simulate one pair of √c-walks per entry of ``start_nodes``; return meet mask.

        This is the batched form of :meth:`pair_walks_meet` used to estimate
        many D(k, k) entries in a single vectorised pass: entry ``p`` starts
        both walks of pair ``p`` at ``start_nodes[p]``, and the returned
        boolean array says whether that pair met at some step ≥ 1.  All pairs
        advance in lock-step, so the cost per step is a handful of NumPy
        operations regardless of how many pairs are alive.
        """
        start = np.asarray(start_nodes, dtype=np.int64)
        if start.ndim != 1:
            raise ValueError("start_nodes must be one-dimensional")
        if start.size and (start.min() < 0 or start.max() >= self.graph.num_nodes):
            raise ValueError("start node out of range")
        num_pairs = start.shape[0]
        first = start.copy()
        second = start.copy()
        met = np.zeros(num_pairs, dtype=bool)
        for _ in range(max_steps):
            active = (first >= 0) & (second >= 0) & ~met
            if not active.any():
                break
            survive_first = self.rng.random(num_pairs) < self.sqrt_c
            survive_second = self.rng.random(num_pairs) < self.sqrt_c
            first = self._advance(first, survive_first)
            second = self._advance(second, survive_second)
            met |= (first >= 0) & (first == second)
        return met

    def terminal_nodes(self, node: int, num_walks: int, steps: int) -> np.ndarray:
        """Positions after exactly ``steps`` non-stopping moves (−1 at dead ends).

        Used by Algorithm 3: walks that survive their ``ℓ(k)``-step non-stop
        prefix continue as fresh √c-walks from wherever they are.
        """
        node = check_node_index(node, self.graph.num_nodes)
        current = np.full(num_walks, node, dtype=np.int64)
        always = np.ones(num_walks, dtype=bool)
        for _ in range(steps):
            if not (current >= 0).any():
                break
            current = self._advance(current, always)
        return current

    def estimate_visit_distribution(self, node: int, num_walks: int, *,
                                    max_steps: int = 16) -> np.ndarray:
        """Empirical ℓ-hop visiting distribution of √c-walks from ``node``.

        Row ``ℓ`` of the returned ``(max_steps + 1, n)`` array estimates
        Pr[the walk is alive at step ℓ and located at node k], i.e. the ℓ-hop
        hitting-probability vector ``(√c P)^ℓ e_node``.  Used by the tests to
        validate the PPR substrate against straight simulation.
        """
        batch = self.walks_from(node, num_walks, max_steps=max_steps)
        histogram = np.zeros((max_steps + 1, self.graph.num_nodes), dtype=np.float64)
        for step in range(max_steps + 1):
            row = batch.positions[step]
            nodes = row[row >= 0]
            if nodes.size:
                histogram[step] += np.bincount(nodes, minlength=self.graph.num_nodes)
        return histogram / float(num_walks)


__all__ = ["SqrtCWalkEngine", "WalkBatch"]
