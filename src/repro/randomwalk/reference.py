"""Per-walk reference implementation of the √c-walk engine.

This is the pre-compaction engine preserved verbatim as an *executable
specification*, mirroring :mod:`repro.kernels.reference`: every step advances
the full walk batch width with one coin flip and one neighbour draw per walk,
regardless of how many walks are still alive.  The production engine in
:mod:`repro.randomwalk.engine` compacts to the live frontier and aggregates
identical walk states into counts; ``tests/test_randomwalk_aggregate.py``
pins the two to each other statistically (same graph, same walk parameters ⇒
visit-count and meeting-probability distributions agree within sampling
tolerance).

Deliberately slow — never call it from production paths.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.randomwalk.walkbatch import WalkBatch
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_node_index, check_positive_int, check_probability


class ReferenceWalkEngine:
    """Full-width per-walk simulation of √c-walks (the executable spec)."""

    def __init__(self, graph: DiGraph, decay: float = 0.6, *, seed: SeedLike = None):
        self.graph = graph
        self.decay = check_probability(decay, "decay", inclusive_low=False, inclusive_high=False)
        self.sqrt_c = float(np.sqrt(self.decay))
        self.rng = ensure_rng(seed)
        self._indptr = graph.in_indptr
        self._indices = graph.in_indices
        self._in_degrees = graph.in_degrees

    # ------------------------------------------------------------------ #
    # single-step kernel
    # ------------------------------------------------------------------ #
    def _advance(self, current: np.ndarray, survive: np.ndarray) -> np.ndarray:
        """Advance live walks one step; returns the new positions (−1 = stopped).

        ``current`` holds node ids with −1 marking already-stopped walks;
        ``survive`` is a boolean array saying which walks won the √c coin flip
        this step.
        """
        next_positions = np.full_like(current, -1)
        alive = (current >= 0) & survive
        if not alive.any():
            return next_positions
        nodes = current[alive]
        degrees = self._in_degrees[nodes]
        movable = degrees > 0
        if movable.any():
            mover_nodes = nodes[movable]
            mover_degrees = degrees[movable]
            offsets = (self.rng.random(mover_nodes.shape[0]) * mover_degrees).astype(np.int64)
            destinations = self._indices[self.graph.in_indptr[mover_nodes] + offsets]
            alive_idx = np.flatnonzero(alive)
            next_positions[alive_idx[movable]] = destinations
        return next_positions

    # ------------------------------------------------------------------ #
    # public simulation APIs
    # ------------------------------------------------------------------ #
    def walks_from(self, node: int, num_walks: int, *, max_steps: int = 64) -> WalkBatch:
        """Simulate ``num_walks`` √c-walks from ``node`` recording full trajectories."""
        node = check_node_index(node, self.graph.num_nodes)
        num_walks = check_positive_int(num_walks, "num_walks")
        max_steps = check_positive_int(max_steps, "max_steps")

        positions = np.full((max_steps + 1, num_walks), -1, dtype=np.int64)
        positions[0] = node
        lengths = np.zeros(num_walks, dtype=np.int64)
        current = positions[0].copy()
        for step in range(1, max_steps + 1):
            if not (current >= 0).any():
                break
            survive = self.rng.random(num_walks) < self.sqrt_c
            current = self._advance(current, survive)
            positions[step] = current
            lengths[current >= 0] = step
        return WalkBatch(positions=positions, lengths=lengths)

    def walks_from_nodes(self, nodes: np.ndarray, *, max_steps: int = 64) -> WalkBatch:
        """Simulate one √c-walk per entry of ``nodes`` (entries may repeat)."""
        start = np.asarray(nodes, dtype=np.int64)
        if start.ndim != 1:
            raise ValueError("nodes must be a one-dimensional array of start nodes")
        if start.size and (start.min() < 0 or start.max() >= self.graph.num_nodes):
            raise ValueError("start node out of range")
        num_walks = start.shape[0]
        positions = np.full((max_steps + 1, num_walks), -1, dtype=np.int64)
        positions[0] = start
        lengths = np.zeros(num_walks, dtype=np.int64)
        current = start.copy()
        for step in range(1, max_steps + 1):
            if not (current >= 0).any():
                break
            survive = self.rng.random(num_walks) < self.sqrt_c
            current = self._advance(current, survive)
            positions[step] = current
            lengths[current >= 0] = step
        return WalkBatch(positions=positions, lengths=lengths)

    def pair_walks_meet(self, node: int, num_pairs: int, *, max_steps: int = 64,
                        skip_steps: int = 0) -> np.ndarray:
        """Simulate ``num_pairs`` *pairs* of walks from ``node``; return a meet mask.

        A pair "meets" if the two walks occupy the same node at the same step
        ``t ≥ 1`` while both are still alive.  With ``skip_steps > 0`` the
        walks do not flip the stopping coin during their first ``skip_steps``
        steps (they stop only at dead ends) — this is the "non-stop prefix"
        behaviour Algorithm 3 needs for estimating the tail
        Σ_{ℓ>ℓ(k)} Z_ℓ(k).  In that mode a pair whose walks already met during
        the prefix is excluded (its first meeting belongs to the
        deterministically computed part), and only meetings strictly after the
        prefix are reported.
        """
        node = check_node_index(node, self.graph.num_nodes)
        num_pairs = check_positive_int(num_pairs, "num_pairs")

        first = np.full(num_pairs, node, dtype=np.int64)
        second = np.full(num_pairs, node, dtype=np.int64)
        met = np.zeros(num_pairs, dtype=bool)
        met_in_prefix = np.zeros(num_pairs, dtype=bool)
        for step in range(1, max_steps + 1):
            active = (first >= 0) & (second >= 0) & ~met
            if not active.any():
                break
            if step <= skip_steps:
                survive_first = np.ones(num_pairs, dtype=bool)
                survive_second = np.ones(num_pairs, dtype=bool)
            else:
                survive_first = self.rng.random(num_pairs) < self.sqrt_c
                survive_second = self.rng.random(num_pairs) < self.sqrt_c
            first = self._advance(first, survive_first)
            second = self._advance(second, survive_second)
            same_node = (first >= 0) & (first == second)
            if step <= skip_steps:
                met_in_prefix |= same_node
            else:
                met |= same_node & ~met_in_prefix
        return met

    def pair_walks_meet_batch(self, start_nodes: np.ndarray, *,
                              max_steps: int = 64) -> np.ndarray:
        """Simulate one pair of √c-walks per entry of ``start_nodes``; return meet mask."""
        start = np.asarray(start_nodes, dtype=np.int64)
        if start.ndim != 1:
            raise ValueError("start_nodes must be one-dimensional")
        if start.size and (start.min() < 0 or start.max() >= self.graph.num_nodes):
            raise ValueError("start node out of range")
        num_pairs = start.shape[0]
        first = start.copy()
        second = start.copy()
        met = np.zeros(num_pairs, dtype=bool)
        for _ in range(max_steps):
            active = (first >= 0) & (second >= 0) & ~met
            if not active.any():
                break
            survive_first = self.rng.random(num_pairs) < self.sqrt_c
            survive_second = self.rng.random(num_pairs) < self.sqrt_c
            first = self._advance(first, survive_first)
            second = self._advance(second, survive_second)
            met |= (first >= 0) & (first == second)
        return met

    def terminal_nodes(self, node: int, num_walks: int, steps: int) -> np.ndarray:
        """Positions after exactly ``steps`` non-stopping moves (−1 at dead ends)."""
        node = check_node_index(node, self.graph.num_nodes)
        current = np.full(num_walks, node, dtype=np.int64)
        always = np.ones(num_walks, dtype=bool)
        for _ in range(steps):
            if not (current >= 0).any():
                break
            current = self._advance(current, always)
        return current

    def estimate_visit_distribution(self, node: int, num_walks: int, *,
                                    max_steps: int = 16) -> np.ndarray:
        """Empirical ℓ-hop visiting distribution of √c-walks from ``node``."""
        batch = self.walks_from(node, num_walks, max_steps=max_steps)
        histogram = np.zeros((max_steps + 1, self.graph.num_nodes), dtype=np.float64)
        for step in range(max_steps + 1):
            row = batch.positions[step]
            nodes = row[row >= 0]
            if nodes.size:
                histogram[step] += np.bincount(nodes, minlength=self.graph.num_nodes)
        return histogram / float(num_walks)


__all__ = ["ReferenceWalkEngine"]
