"""Trajectory container shared by the production and reference walk engines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class WalkBatch:
    """Trajectories of a batch of √c-walks.

    ``positions[t]`` holds the node index of every walk at step ``t`` and is
    ``-1`` once the walk has stopped.  ``lengths[w]`` is the number of steps
    walk ``w`` made before stopping (0 means it stopped immediately).
    """

    positions: np.ndarray          # shape (max_steps + 1, num_walks)
    lengths: np.ndarray            # shape (num_walks,)

    @property
    def num_walks(self) -> int:
        return int(self.positions.shape[1])

    @property
    def max_steps(self) -> int:
        return int(self.positions.shape[0] - 1)

    def nodes_at(self, step: int) -> np.ndarray:
        """Node of every walk at ``step`` (−1 for stopped walks)."""
        if step < 0 or step > self.max_steps:
            raise ValueError(f"step {step} outside recorded range 0..{self.max_steps}")
        return self.positions[step]

    def visit_counts(self, num_nodes: int) -> np.ndarray:
        """How many (walk, step) pairs visited each node (stopped steps excluded)."""
        flat = self.positions[self.positions >= 0]
        return np.bincount(flat, minlength=num_nodes)

    def memory_bytes(self) -> int:
        return int(self.positions.nbytes + self.lengths.nbytes)


__all__ = ["WalkBatch"]
