"""Monte-Carlo estimators built on the √c-walk engine.

These implement the sampling primitives of the paper:

* :func:`estimate_meeting_probability` — eq. (2): S(i, j) is the probability
  that two √c-walks from i and j meet (same node, same step).
* :func:`estimate_diagonal_entry` — Algorithm 2: the fraction of walk pairs
  from node k that *never* meet estimates D(k, k).
* :func:`estimate_tail_meeting_probability` — the tail estimator used by the
  improved Algorithm 3: walks run a non-stop prefix of ``skip_steps`` steps,
  then behave as fresh √c-walks; the fraction of pairs that meet *after* the
  prefix, multiplied by ``c^skip_steps``, estimates Σ_{ℓ>ℓ(k)} Z_ℓ(k).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.randomwalk.engine import SqrtCWalkEngine
from repro.utils.rng import SeedLike
from repro.utils.validation import check_node_index, check_positive_int


def estimate_meeting_probability(graph: DiGraph, source: int, target: int,
                                 num_pairs: int, *, decay: float = 0.6,
                                 max_steps: int = 64, seed: SeedLike = None) -> float:
    """Monte-Carlo estimate of S(source, target) via eq. (2).

    Two √c-walks, one from each node, are simulated ``num_pairs`` times; the
    fraction of pairs that visit the same node at the same step (counting the
    trivial step-0 meeting when ``source == target``) estimates the SimRank
    value.
    """
    source = check_node_index(source, graph.num_nodes, "source")
    target = check_node_index(target, graph.num_nodes, "target")
    num_pairs = check_positive_int(num_pairs, "num_pairs")
    if source == target:
        return 1.0

    engine = SqrtCWalkEngine(graph, decay, seed=seed)
    first = np.full(num_pairs, source, dtype=np.int64)
    second = np.full(num_pairs, target, dtype=np.int64)
    met = np.zeros(num_pairs, dtype=bool)
    for _ in range(max_steps):
        active = (first >= 0) & (second >= 0) & ~met
        if not active.any():
            break
        survive_first = engine.rng.random(num_pairs) < engine.sqrt_c
        survive_second = engine.rng.random(num_pairs) < engine.sqrt_c
        first = engine._advance(first, survive_first)
        second = engine._advance(second, survive_second)
        met |= (first >= 0) & (first == second)
    return float(met.mean())


def estimate_diagonal_entry(graph: DiGraph, node: int, num_pairs: int, *,
                            decay: float = 0.6, max_steps: int = 64,
                            seed: SeedLike = None,
                            engine: Optional[SqrtCWalkEngine] = None) -> float:
    """Algorithm 2: estimate D(node, node) with ``num_pairs`` pairs of √c-walks.

    D(k, k) = 1 − Pr[two √c-walks from k meet at some step ≥ 1]; the estimator
    is the fraction of simulated pairs that never meet.  The two degenerate
    cases of Algorithm 3 are handled exactly: D = 1 when the node has no
    in-neighbour and D = 1 − c when it has exactly one (the two walks move
    together with probability c and then meet immediately).
    """
    node = check_node_index(node, graph.num_nodes)
    in_degree = graph.in_degree(node)
    if in_degree == 0:
        return 1.0
    if in_degree == 1:
        return 1.0 - decay
    num_pairs = check_positive_int(num_pairs, "num_pairs")
    walker = engine if engine is not None else SqrtCWalkEngine(graph, decay, seed=seed)
    met = walker.pair_walks_meet(node, num_pairs, max_steps=max_steps)
    return float(1.0 - met.mean())


def estimate_tail_meeting_probability(graph: DiGraph, node: int, num_pairs: int,
                                      skip_steps: int, *, decay: float = 0.6,
                                      max_steps: int = 64, seed: SeedLike = None,
                                      engine: Optional[SqrtCWalkEngine] = None) -> float:
    """Estimate Σ_{ℓ > skip_steps} Z_ℓ(node) for Algorithm 3.

    The pair of special walks does not flip the stopping coin during the first
    ``skip_steps`` steps; afterwards both behave as ordinary √c-walks.  The
    probability that such a pair meets after the prefix equals
    (1 / c^skip_steps) · Σ_{ℓ > skip_steps} Z_ℓ(node), so the Monte-Carlo
    fraction is scaled back by ``c^skip_steps``.
    """
    node = check_node_index(node, graph.num_nodes)
    num_pairs = check_positive_int(num_pairs, "num_pairs")
    if skip_steps < 0:
        raise ValueError("skip_steps must be non-negative")
    walker = engine if engine is not None else SqrtCWalkEngine(graph, decay, seed=seed)
    met = walker.pair_walks_meet(node, num_pairs, max_steps=max_steps,
                                 skip_steps=skip_steps)
    return float((decay ** skip_steps) * met.mean())


__all__ = [
    "estimate_meeting_probability",
    "estimate_diagonal_entry",
    "estimate_tail_meeting_probability",
]
