"""Monte-Carlo estimators built on the √c-walk engine.

These implement the sampling primitives of the paper:

* :func:`estimate_meeting_probability` — eq. (2): S(i, j) is the probability
  that two √c-walks from i and j meet (same node, same step).
* :func:`estimate_diagonal_entry` — Algorithm 2: the fraction of walk pairs
  from node k that *never* meet estimates D(k, k).
* :func:`estimate_tail_meeting_probability` — the tail estimator used by the
  improved Algorithm 3: walks run a non-stop prefix of ``skip_steps`` steps,
  then behave as fresh √c-walks; the fraction of pairs that meet *after* the
  prefix, multiplied by ``c^skip_steps``, estimates Σ_{ℓ>ℓ(k)} Z_ℓ(k).

All three ride the count-aggregated pair kernel: one engine call simulates
the whole pair budget with per-state binomial/multinomial draws, so the cost
is bounded by the distinct occupied pair states instead of the pair count.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.digraph import DiGraph
from repro.randomwalk.engine import SqrtCWalkEngine
from repro.utils.rng import SeedLike
from repro.utils.validation import check_node_index, check_positive_int


def estimate_meeting_probability(graph: DiGraph, source: int, target: int,
                                 num_pairs: int, *, decay: float = 0.6,
                                 max_steps: int = 64, seed: SeedLike = None) -> float:
    """Monte-Carlo estimate of S(source, target) via eq. (2).

    Two √c-walks, one from each node, are simulated ``num_pairs`` times; the
    fraction of pairs that visit the same node at the same step (counting the
    trivial step-0 meeting when ``source == target``) estimates the SimRank
    value.
    """
    source = check_node_index(source, graph.num_nodes, "source")
    target = check_node_index(target, graph.num_nodes, "target")
    num_pairs = check_positive_int(num_pairs, "num_pairs")
    if source == target:
        return 1.0

    engine = SqrtCWalkEngine(graph, decay, seed=seed)
    met = engine.pair_meet_counts_from(
        np.array([source], dtype=np.int64), np.array([target], dtype=np.int64),
        np.array([num_pairs], dtype=np.int64), max_steps=max_steps)
    return float(met[0]) / float(num_pairs)


def estimate_diagonal_entry(graph: DiGraph, node: int, num_pairs: int, *,
                            decay: float = 0.6, max_steps: int = 64,
                            seed: SeedLike = None,
                            engine: Optional[SqrtCWalkEngine] = None) -> float:
    """Algorithm 2: estimate D(node, node) with ``num_pairs`` pairs of √c-walks.

    D(k, k) = 1 − Pr[two √c-walks from k meet at some step ≥ 1]; the estimator
    is the fraction of simulated pairs that never meet.  The two degenerate
    cases of Algorithm 3 are handled exactly: D = 1 when the node has no
    in-neighbour and D = 1 − c when it has exactly one (the two walks move
    together with probability c and then meet immediately).
    """
    node = check_node_index(node, graph.num_nodes)
    in_degree = graph.in_degree(node)
    if in_degree == 0:
        return 1.0
    if in_degree == 1:
        return 1.0 - decay
    num_pairs = check_positive_int(num_pairs, "num_pairs")
    walker = engine if engine is not None else SqrtCWalkEngine(graph, decay, seed=seed)
    met = walker.pair_meet_counts(np.array([node], dtype=np.int64),
                                  np.array([num_pairs], dtype=np.int64),
                                  max_steps=max_steps)
    return 1.0 - float(met[0]) / float(num_pairs)


def estimate_tail_meeting_probability(graph: DiGraph, node: int, num_pairs: int,
                                      skip_steps: int, *, decay: float = 0.6,
                                      max_steps: int = 64, seed: SeedLike = None,
                                      engine: Optional[SqrtCWalkEngine] = None) -> float:
    """Estimate Σ_{ℓ > skip_steps} Z_ℓ(node) for Algorithm 3.

    The pair of special walks does not flip the stopping coin during the first
    ``skip_steps`` steps; afterwards both behave as ordinary √c-walks.  The
    probability that such a pair meets after the prefix equals
    (1 / c^skip_steps) · Σ_{ℓ > skip_steps} Z_ℓ(node), so the Monte-Carlo
    fraction is scaled back by ``c^skip_steps``.
    """
    node = check_node_index(node, graph.num_nodes)
    num_pairs = check_positive_int(num_pairs, "num_pairs")
    if skip_steps < 0:
        raise ValueError("skip_steps must be non-negative")
    walker = engine if engine is not None else SqrtCWalkEngine(graph, decay, seed=seed)
    met = walker.pair_meet_counts(np.array([node], dtype=np.int64),
                                  np.array([num_pairs], dtype=np.int64),
                                  max_steps=max_steps, skip_steps=skip_steps)
    return float(decay ** skip_steps) * float(met[0]) / float(num_pairs)


__all__ = [
    "estimate_meeting_probability",
    "estimate_diagonal_entry",
    "estimate_tail_meeting_probability",
]
