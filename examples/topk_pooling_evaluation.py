"""Pooling vs true ground truth: why pooling is not enough (paper §2, "Pooling").

Before ExactSim, top-k SimRank algorithms on large graphs were compared by
*pooling*: merge every algorithm's top-k answer, score the pooled candidates
with Monte-Carlo, and rank inside the pool.  The pooled "ground truth" can
only contain nodes some participant returned, so an algorithm may look
perfect in the pool while missing true top-k nodes entirely.

This example reproduces that argument quantitatively: it compares each
algorithm's pooled precision with its true precision (available here because
the example graph is small enough for the PowerMethod oracle).

Run with:  python examples/topk_pooling_evaluation.py
"""

from repro import ExactSim, ExactSimConfig, MonteCarloSimRank, ParSim, PowerMethod
from repro.experiments.reporting import format_rows
from repro.graph import preferential_attachment_graph
from repro.metrics import precision_at_k
from repro.metrics.pooling import pooled_precision
from repro.service import QueryPlanner, SingleSourceQuery, TopKQuery

DECAY = 0.6
K = 25


def main() -> None:
    graph = preferential_attachment_graph(600, 4, directed=False, seed=9)
    source = 17
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"query node {source}; k = {K}")

    oracle = PowerMethod(graph, decay=DECAY).preprocess()
    truth = oracle.single_source(source).scores

    # Pre-built instances register with one planner; typed queries then ride
    # its routing (the single-source vectors land in the LRU cache, so the
    # top-k queries that follow derive from them without recomputation).
    planner = QueryPlanner(graph, default_method="exactsim")
    algorithms = {
        "exactsim": ExactSim(graph, ExactSimConfig(epsilon=1e-3, decay=DECAY, seed=5,
                                                   max_total_samples=100_000)),
        "parsim": ParSim(graph, decay=DECAY, iterations=12),
        "mc-weak": MonteCarloSimRank(graph, decay=DECAY, walks_per_node=25,
                                     walk_length=8, seed=5),
    }
    for name, algorithm in algorithms.items():
        planner.register(algorithm, name)

    results = {name: planner.execute(SingleSourceQuery(source, method=name)).result
               for name in algorithms}
    top_k_answers = {
        name: planner.execute(TopKQuery(source, K, method=name)).result
        for name in algorithms}

    # Pooling evaluation (what the field had to use before ExactSim).  We use
    # the exact oracle as the pool scorer so the comparison isolates the
    # pool-membership limitation rather than scorer noise.
    evaluation = pooled_precision(source, top_k_answers, K,
                                  oracle=lambda s, t: float(oracle.matrix[s, t]))

    rows = []
    for name, result in results.items():
        rows.append({
            "method": name,
            "pooled_precision": evaluation.precisions[name],
            "true_precision": precision_at_k(result.scores, truth, K, exclude=source),
        })
    print("\npooled vs true precision@{}:".format(K))
    print(format_rows(rows))
    stats = planner.stats()
    print(f"\nserving stats: {int(stats['queries'])} queries, "
          f"{int(stats['cache_routes'])} served from cached vectors")
    print("\npooled precision can only compare the participants against each other;"
          "\nthe true precision column requires a ground truth - which is exactly"
          "\nwhat ExactSim provides on graphs where the PowerMethod is infeasible.")


if __name__ == "__main__":
    main()
