"""Pooling vs true ground truth: why pooling is not enough (paper §2, "Pooling").

Before ExactSim, top-k SimRank algorithms on large graphs were compared by
*pooling*: merge every algorithm's top-k answer, score the pooled candidates
with Monte-Carlo, and rank inside the pool.  The pooled "ground truth" can
only contain nodes some participant returned, so an algorithm may look
perfect in the pool while missing true top-k nodes entirely.

This example reproduces that argument quantitatively: it compares each
algorithm's pooled precision with its true precision (available here because
the example graph is small enough for the PowerMethod oracle).

Run with:  python examples/topk_pooling_evaluation.py
"""

from repro import ExactSim, ExactSimConfig, MonteCarloSimRank, ParSim, PowerMethod
from repro.experiments.reporting import format_rows
from repro.graph import preferential_attachment_graph
from repro.metrics import precision_at_k
from repro.metrics.pooling import pooled_precision

DECAY = 0.6
K = 25


def main() -> None:
    graph = preferential_attachment_graph(600, 4, directed=False, seed=9)
    source = 17
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges; "
          f"query node {source}; k = {K}")

    oracle = PowerMethod(graph, decay=DECAY).preprocess()
    truth = oracle.single_source(source).scores

    algorithms = {
        "exactsim": ExactSim(graph, ExactSimConfig(epsilon=1e-3, decay=DECAY, seed=5,
                                                   max_total_samples=100_000)),
        "parsim": ParSim(graph, decay=DECAY, iterations=12),
        "mc-weak": MonteCarloSimRank(graph, decay=DECAY, walks_per_node=25,
                                     walk_length=8, seed=5),
    }

    results = {name: algorithm.single_source(source) for name, algorithm in algorithms.items()}
    top_k_answers = {name: result.top_k(K) for name, result in results.items()}

    # Pooling evaluation (what the field had to use before ExactSim).  We use
    # the exact oracle as the pool scorer so the comparison isolates the
    # pool-membership limitation rather than scorer noise.
    evaluation = pooled_precision(source, top_k_answers, K,
                                  oracle=lambda s, t: float(oracle.matrix[s, t]))

    rows = []
    for name, result in results.items():
        rows.append({
            "method": name,
            "pooled_precision": evaluation.precisions[name],
            "true_precision": precision_at_k(result.scores, truth, K, exclude=source),
        })
    print("\npooled vs true precision@{}:".format(K))
    print(format_rows(rows))
    print("\npooled precision can only compare the participants against each other;"
          "\nthe true precision column requires a ground truth - which is exactly"
          "\nwhat ExactSim provides on graphs where the PowerMethod is infeasible.")


if __name__ == "__main__":
    main()
