"""Quickstart: exact single-source SimRank on a synthetic scale-free graph.

Run with:  python examples/quickstart.py
"""

from repro import ExactSim, ExactSimConfig, PowerMethod
from repro.graph import power_law_graph
from repro.metrics import max_error, precision_at_k


def main() -> None:
    # 1. Build (or load) a directed graph.  Any iterable of (source, target)
    #    edges works; here we use the bundled power-law generator.
    graph = power_law_graph(num_nodes=2_000, average_degree=6.0, seed=42)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    # 2. Configure ExactSim.  epsilon is the additive error target; the
    #    paper's exactness setting is 1e-7, which needs the C++-scale sample
    #    budget — for interactive use a looser epsilon is already far more
    #    accurate than any approximate baseline.
    config = ExactSimConfig(epsilon=1e-3, decay=0.6, seed=7)
    engine = ExactSim(graph, config)

    # 3. Answer a single-source query and inspect the top-10 most similar nodes.
    source = 0
    result = engine.single_source(source)
    print(f"\nquery node {source}: answered in {result.query_seconds:.2f}s "
          f"using {int(result.stats['samples_realised'])} walk pairs "
          f"(L = {int(result.stats['iterations'])} iterations)")
    print("\ntop-10 most similar nodes:")
    for node, score in result.top_k(10).as_pairs():
        print(f"  node {node:5d}   S({source}, {node}) = {score:.6f}")

    # 4. Sanity-check against the O(n^2) PowerMethod oracle (feasible here
    #    because the example graph is small; this is exactly what is NOT
    #    possible on the paper's large graphs).
    oracle = PowerMethod(graph, decay=0.6).preprocess()
    truth = oracle.single_source(source).scores
    print(f"\nMaxError vs PowerMethod ground truth: {max_error(result.scores, truth):.2e}")
    print(f"Precision@50 vs ground truth:          "
          f"{precision_at_k(result.scores, truth, 50, exclude=source):.3f}")


if __name__ == "__main__":
    main()
