"""Ground-truth study: use ExactSim as the oracle to evaluate approximate methods.

This is the paper's motivating workflow.  On graphs too large for the
PowerMethod, ExactSim at a fine epsilon *is* the ground truth; every
approximate single-source algorithm can then be measured honestly instead of
extrapolating from small-graph behaviour (paper §1).

Run with:  python examples/ground_truth_study.py [dataset]
           dataset defaults to DB (the DBLP-Author stand-in).
"""

import sys

from repro import (
    ExactSim,
    ExactSimConfig,
    LinearizationSimRank,
    MonteCarloSimRank,
    ParSim,
)
from repro.experiments.harness import select_query_nodes
from repro.experiments.reporting import format_rows
from repro.graph.datasets import load_dataset
from repro.metrics import max_error, precision_at_k

DECAY = 0.6
ORACLE_EPSILON = 1e-4
ORACLE_SAMPLE_CAP = 300_000


def main(dataset_key: str = "DB") -> None:
    graph = load_dataset(dataset_key)
    print(f"dataset {dataset_key}: {graph.num_nodes} nodes, {graph.num_edges} edges "
          f"(synthetic stand-in, see DESIGN.md)")

    query_nodes = select_query_nodes(graph, 3, seed=1)
    print(f"query nodes: {query_nodes.tolist()}")

    # The ground-truth oracle: ExactSim at the finest epsilon we can afford.
    oracle = ExactSim(graph, ExactSimConfig(epsilon=ORACLE_EPSILON, decay=DECAY, seed=11,
                                            max_total_samples=ORACLE_SAMPLE_CAP))

    # The approximate methods under evaluation, at "fast" settings.
    candidates = {
        "exactsim (eps=1e-2)": ExactSim(graph, ExactSimConfig(
            epsilon=1e-2, decay=DECAY, seed=3, max_total_samples=50_000)),
        "parsim (L=10)": ParSim(graph, decay=DECAY, iterations=10),
        "mc (50 walks)": MonteCarloSimRank(graph, decay=DECAY, walks_per_node=50,
                                           walk_length=10, seed=3),
        "linearization (20 samples/node)": LinearizationSimRank(
            graph, decay=DECAY, samples_per_node=20, seed=3),
    }

    rows = []
    for name, algorithm in candidates.items():
        errors, precisions, seconds = [], [], []
        for source in query_nodes:
            source = int(source)
            truth = oracle.single_source(source).scores
            result = algorithm.single_source(source)
            errors.append(max_error(result.scores, truth))
            precisions.append(precision_at_k(result.scores, truth, 100, exclude=source))
            seconds.append(result.query_seconds)
        rows.append({
            "method": name,
            "avg_query_seconds": sum(seconds) / len(seconds),
            "max_error": max(errors),
            "precision@100": sum(precisions) / len(precisions),
        })

    print("\nevaluation against the ExactSim ground truth:")
    print(format_rows(rows))
    print("\n(the paper's Figures 5-6 are exactly this table, swept over each "
          "method's accuracy knob)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "DB")
