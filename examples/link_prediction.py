"""Link prediction with SimRank: an application from the paper's introduction.

SimRank scores are widely used as features for link prediction [23 in the
paper].  This example plants a two-community graph, hides a fraction of its
edges, and checks that ExactSim's similarity ranks the hidden (true) endpoints
above random non-edges — and that it respects the community structure.

Link prediction is a *pair* workload, so the example issues typed
:class:`SinglePairQuery` requests through the query planner: pairs sharing a
left endpoint coalesce into one single-source pass, repeated pairs come out
of the LRU result cache, and the community check rides :class:`TopKQuery`.

Run with:  python examples/link_prediction.py
"""

import numpy as np

from repro.graph import two_community_graph
from repro.graph.digraph import DiGraph
from repro.service import QueryPlanner, SinglePairQuery, TopKQuery

DECAY = 0.6
COMMUNITY_SIZE = 150
HIDDEN_EDGES = 40


def main() -> None:
    rng = np.random.default_rng(3)
    full_graph = two_community_graph(COMMUNITY_SIZE, p_in=0.08, p_out=0.005, seed=21)
    print(f"planted graph: {full_graph.num_nodes} nodes, {full_graph.num_edges} edges")

    # Hide a sample of undirected edges (drop both directions).
    edges = [(int(s), int(t)) for s, t in full_graph.edge_array() if s < t]
    hidden_indices = rng.choice(len(edges), size=HIDDEN_EDGES, replace=False)
    hidden = {edges[i] for i in hidden_indices}
    remaining = [edge for edge in edges if edge not in hidden]
    observed_graph = DiGraph.from_edges(remaining, num_nodes=full_graph.num_nodes,
                                        directed=False, name="observed")
    print(f"observed graph after hiding {HIDDEN_EDGES} edges: "
          f"{observed_graph.num_edges} directed edges")

    # Score hidden pairs and an equal number of random non-edges with typed
    # pair queries: the planner coalesces pairs sharing a left endpoint into
    # one single-source pass and serves repeats from its result cache.
    planner = QueryPlanner(
        observed_graph, default_method="exactsim", cache_entries=512,
        method_configs={"exactsim": {"epsilon": 1e-3, "decay": DECAY, "seed": 5,
                                     "max_total_samples": 80_000}})

    labels = np.repeat([0, 1], COMMUNITY_SIZE)
    non_edges = []
    while len(non_edges) < HIDDEN_EDGES:
        u, v = int(rng.integers(full_graph.num_nodes)), int(rng.integers(full_graph.num_nodes))
        if u != v and not full_graph.has_edge(u, v):
            non_edges.append((u, v))

    pair_queries = [SinglePairQuery(u, v) for u, v in list(hidden) + non_edges]
    outcomes = planner.answer(pair_queries)
    hidden_scores = [outcome.result.score for outcome in outcomes[:len(hidden)]]
    negative_scores = [outcome.result.score for outcome in outcomes[len(hidden):]]

    # AUC of "hidden edge scores beat non-edge scores".
    wins = sum(1 for h in hidden_scores for n in negative_scores if h > n)
    ties = sum(1 for h in hidden_scores for n in negative_scores if h == n)
    auc = (wins + 0.5 * ties) / (len(hidden_scores) * len(negative_scores))
    print(f"\nlink-prediction AUC (hidden edges vs random non-edges): {auc:.3f}")

    # Community check: a node's top-10 similar nodes should mostly share its
    # community.  Top-k queries on a source whose vector the pair phase
    # already cached come back as 'cached-derived' without recomputation.
    sample_nodes = rng.choice(full_graph.num_nodes, size=5, replace=False)
    top_outcomes = planner.answer([TopKQuery(int(node), 10)
                                   for node in sample_nodes])
    agreements = []
    for node, outcome in zip(sample_nodes, top_outcomes):
        same = sum(1 for v in outcome.result.nodes if labels[int(v)] == labels[int(node)])
        agreements.append(same / 10)
    print(f"average fraction of top-10 neighbours in the same community: "
          f"{np.mean(agreements):.2f}")

    stats = planner.stats()
    print(f"\nserving stats: {int(stats['queries'])} queries, "
          f"{int(stats['coalesced_queries'])} coalesced, "
          f"{int(stats['cache_routes'])} answered from cache "
          f"({int(stats['cache_hits'])} cache hits)")
    print("\nSimRank ranks structurally close nodes first, which is what makes it a"
          "\nuseful link-prediction and recommendation feature (paper §1).")


if __name__ == "__main__":
    main()
