"""Link prediction with SimRank: an application from the paper's introduction.

SimRank scores are widely used as features for link prediction [23 in the
paper].  This example plants a two-community graph, hides a fraction of its
edges, and checks that ExactSim's similarity ranks the hidden (true) endpoints
above random non-edges — and that it respects the community structure.

Run with:  python examples/link_prediction.py
"""

import numpy as np

from repro import ExactSim, ExactSimConfig
from repro.graph import two_community_graph
from repro.graph.digraph import DiGraph

DECAY = 0.6
COMMUNITY_SIZE = 150
HIDDEN_EDGES = 40


def main() -> None:
    rng = np.random.default_rng(3)
    full_graph = two_community_graph(COMMUNITY_SIZE, p_in=0.08, p_out=0.005, seed=21)
    print(f"planted graph: {full_graph.num_nodes} nodes, {full_graph.num_edges} edges")

    # Hide a sample of undirected edges (drop both directions).
    edges = [(int(s), int(t)) for s, t in full_graph.edge_array() if s < t]
    hidden_indices = rng.choice(len(edges), size=HIDDEN_EDGES, replace=False)
    hidden = {edges[i] for i in hidden_indices}
    remaining = [edge for edge in edges if edge not in hidden]
    observed_graph = DiGraph.from_edges(remaining, num_nodes=full_graph.num_nodes,
                                        directed=False, name="observed")
    print(f"observed graph after hiding {HIDDEN_EDGES} edges: "
          f"{observed_graph.num_edges} directed edges")

    # Score hidden pairs and an equal number of random non-edges, using the
    # single-source results of each hidden pair's left endpoint.
    engine = ExactSim(observed_graph, ExactSimConfig(epsilon=1e-3, decay=DECAY, seed=5,
                                                     max_total_samples=80_000))
    cache = {}

    def similarity(u: int, v: int) -> float:
        if u not in cache:
            cache[u] = engine.single_source(u).scores
        return float(cache[u][v])

    labels = np.repeat([0, 1], COMMUNITY_SIZE)
    non_edges = []
    while len(non_edges) < HIDDEN_EDGES:
        u, v = int(rng.integers(full_graph.num_nodes)), int(rng.integers(full_graph.num_nodes))
        if u != v and not full_graph.has_edge(u, v):
            non_edges.append((u, v))

    hidden_scores = [similarity(u, v) for u, v in hidden]
    negative_scores = [similarity(u, v) for u, v in non_edges]

    # AUC of "hidden edge scores beat non-edge scores".
    wins = sum(1 for h in hidden_scores for n in negative_scores if h > n)
    ties = sum(1 for h in hidden_scores for n in negative_scores if h == n)
    auc = (wins + 0.5 * ties) / (len(hidden_scores) * len(negative_scores))
    print(f"\nlink-prediction AUC (hidden edges vs random non-edges): {auc:.3f}")

    # Community check: a node's top-10 similar nodes should mostly share its community.
    sample_nodes = rng.choice(full_graph.num_nodes, size=5, replace=False)
    agreements = []
    for node in sample_nodes:
        node = int(node)
        top = engine.single_source(node).top_k(10)
        same = sum(1 for v in top.nodes if labels[int(v)] == labels[node])
        agreements.append(same / 10)
    print(f"average fraction of top-10 neighbours in the same community: "
          f"{np.mean(agreements):.2f}")
    print("\nSimRank ranks structurally close nodes first, which is what makes it a"
          "\nuseful link-prediction and recommendation feature (paper §1).")


if __name__ == "__main__":
    main()
