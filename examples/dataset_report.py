"""Dataset report: Table 2 plus substrate statistics for every registered dataset.

Prints the paper's reported sizes next to this reproduction's synthetic
stand-ins, together with the structural statistics that drive the algorithms'
behaviour (in-degree distribution tail, PageRank norm ‖π‖² — the quantity that
Lemma 3's π²-sampling exploits).

Run with:  python examples/dataset_report.py [--large]
           (without --large only the four small datasets are generated)
"""

import sys

import numpy as np

from repro.experiments.reporting import format_rows
from repro.graph.datasets import dataset_names, get_spec, load_dataset
from repro.ppr.pagerank import pagerank


def main(include_large: bool = False) -> None:
    keys = dataset_names("small") + (dataset_names("large") if include_large else [])
    rows = []
    for key in keys:
        spec = get_spec(key)
        graph = load_dataset(key)
        rank = pagerank(graph)
        degrees = graph.in_degrees
        rows.append({
            "dataset": key,
            "paper_name": spec.paper_name,
            "type": spec.kind,
            "paper_n": spec.paper_nodes,
            "paper_m": spec.paper_edges,
            "repro_n": graph.num_nodes,
            "repro_m": graph.num_edges,
            "max_in_degree": int(degrees.max()),
            "mean_in_degree": float(degrees.mean()),
            "pagerank_sq_norm": float(np.dot(rank, rank)),
        })
    print(format_rows(rows))
    print("\npagerank_sq_norm = ||pi||^2: the smaller it is, the bigger the saving of"
          "\nthe pi^2-sampling optimization (Lemma 3) - scale-free graphs keep it well"
          "\nbelow 1, which is why ExactSim's optimized variant shines on them.")


if __name__ == "__main__":
    main(include_large="--large" in sys.argv[1:])
