"""Tests for the SLING baseline."""

import numpy as np
import pytest

from repro.baselines.sling import SLING
from repro.metrics.accuracy import max_error, precision_at_k

DECAY = 0.6


class TestSLING:
    def test_accuracy_against_power_method(self, collab_graph, collab_simrank):
        algorithm = SLING(collab_graph, decay=DECAY, epsilon=1e-2, seed=3)
        result = algorithm.single_source(6)
        assert max_error(result.scores, collab_simrank[6], exclude=6) < 0.05

    def test_error_shrinks_with_epsilon(self, collab_graph, collab_simrank):
        source = 10
        coarse = SLING(collab_graph, decay=DECAY, epsilon=1e-1, seed=5)
        fine = SLING(collab_graph, decay=DECAY, epsilon=1e-3, seed=5)
        coarse_error = max_error(coarse.single_source(source).scores,
                                 collab_simrank[source], exclude=source)
        fine_error = max_error(fine.single_source(source).scores,
                               collab_simrank[source], exclude=source)
        assert fine_error <= coarse_error + 1e-6

    def test_top_k_quality(self, collab_graph, collab_simrank):
        algorithm = SLING(collab_graph, decay=DECAY, epsilon=1e-3, seed=7)
        result = algorithm.single_source(4)
        assert precision_at_k(result.scores, collab_simrank[4], 10, exclude=4) >= 0.9

    def test_index_accounting_and_flags(self, collab_graph):
        algorithm = SLING(collab_graph, epsilon=1e-2, seed=1)
        assert algorithm.index_based
        assert algorithm.index_bytes() == 0
        algorithm.preprocess()
        assert algorithm.index_bytes() > collab_graph.num_nodes * 8
        assert algorithm.preprocessing_seconds > 0.0

    def test_index_grows_with_precision(self, collab_graph):
        coarse = SLING(collab_graph, epsilon=1e-1, seed=1).preprocess()
        fine = SLING(collab_graph, epsilon=1e-3, seed=1).preprocess()
        assert fine.index_bytes() >= coarse.index_bytes()

    def test_fast_query_after_preprocessing(self, collab_graph):
        algorithm = SLING(collab_graph, epsilon=1e-2, seed=1).preprocess()
        result = algorithm.single_source(0)
        # The whole point of SLING: queries are much cheaper than indexing.
        assert result.query_seconds < algorithm.preprocessing_seconds

    def test_samples_per_node_default_derived_from_epsilon(self, collab_graph):
        assert SLING(collab_graph, epsilon=1e-1).samples_per_node == 10
        assert SLING(collab_graph, epsilon=1e-4).samples_per_node == 10_000

    def test_source_score_is_one(self, collab_graph):
        algorithm = SLING(collab_graph, epsilon=1e-1, seed=1)
        assert algorithm.single_source(2).scores[2] == 1.0
