"""Tests for the query plane: typed queries, planner routing, caches.

The conformance half mirrors ``test_registry_conformance.py`` one layer up:
every registered method must answer all three query kinds through the
planner — natively or derived — within the method's error bound against the
PowerMethod oracle, and the native paths must agree with their derived
fallbacks.  The unit half pins the serving semantics: LRU cache hits,
derivation from cached vectors, micro-batch coalescing, cost-aware pair
routing, persisted-index auto-load, and the wire format.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import registry
from repro.baselines.base import QUERY_SINGLE_PAIR, QUERY_TOP_K
from repro.core.result import (
    SinglePairResult,
    SingleSourceResult,
    TopKResult,
    top_k_set_certified,
)
from repro.diagonal.local import SparseDepthRecord
from repro.graph.context import GraphContext
from repro.service import (
    QueryPlanner,
    ResultCache,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    query_from_dict,
    query_to_dict,
    refine_top_k,
    result_to_dict,
)
from repro.service.planner import (
    ROUTE_CACHED,
    ROUTE_CACHED_DERIVED,
    ROUTE_DERIVED,
    ROUTE_NATIVE,
)

#: Small/fast configs per method (mirrors the registry conformance suite).
CONFIGS = {
    "exactsim": {"epsilon": 5e-2, "seed": 7, "max_total_samples": 20_000},
    "exactsim-basic": {"epsilon": 5e-2, "seed": 7, "max_total_samples": 20_000},
    "power-method": {},
    "mc": {"walks_per_node": 40, "walk_length": 8, "seed": 7},
    "linearization": {"samples_per_node": 60, "seed": 7},
    "parsim": {"iterations": 10},
    "prsim": {"epsilon": 3e-2, "seed": 7},
    "probesim": {"num_walks": 300, "seed": 7},
    "sling": {"epsilon": 3e-2, "seed": 7},
}

#: Max |answer − oracle| per single-pair query.  Sampling methods get their
#: statistical slack, deterministic methods their ε / truncation bound.
PAIR_TOLERANCE = {
    "exactsim": 1e-1, "exactsim-basic": 1e-1, "power-method": 1e-8,
    "mc": 2.5e-1, "linearization": 1e-1, "parsim": 1e-1, "prsim": 1e-1,
    "probesim": 1.5e-1, "sling": 1e-1,
}

ALL_METHODS = sorted(CONFIGS)
K = 10


@pytest.fixture(scope="module")
def service_graph():
    from repro.graph.generators import preferential_attachment_graph

    return preferential_attachment_graph(120, 3, directed=False, seed=11)


@pytest.fixture(scope="module")
def oracle(service_graph):
    from repro.baselines.power_method import simrank_matrix

    return simrank_matrix(service_graph, decay=0.6)


def make_planner(graph, **overrides) -> QueryPlanner:
    options = dict(method_configs=CONFIGS, cache_entries=64)
    options.update(overrides)
    return QueryPlanner(graph, **options)


# --------------------------------------------------------------------------- #
# conformance: every method answers every query kind within its error bound
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ALL_METHODS)
class TestPlannerConformance:
    def test_all_query_kinds_answered_and_typed(self, name, service_graph):
        planner = make_planner(service_graph)
        outcomes = planner.answer([
            SingleSourceQuery(5, method=name),
            SinglePairQuery(5, 9, method=name),
            TopKQuery(5, K, method=name),
        ])
        assert isinstance(outcomes[0].result, SingleSourceResult)
        assert isinstance(outcomes[1].result, SinglePairResult)
        assert isinstance(outcomes[2].result, TopKResult)
        for outcome in outcomes:
            assert outcome.plan.method == name
            assert outcome.plan.route in (ROUTE_NATIVE, ROUTE_DERIVED,
                                          ROUTE_CACHED_DERIVED)

    def test_single_pair_within_error_bound(self, name, service_graph, oracle):
        planner = make_planner(service_graph)
        pairs = [(5, 9), (1, 2), (23, 40)]
        outcomes = planner.answer([SinglePairQuery(s, t, method=name)
                                   for s, t in pairs])
        for (s, t), outcome in zip(pairs, outcomes):
            assert abs(outcome.result.score - oracle[s, t]) \
                <= PAIR_TOLERANCE[name], \
                f"{name}: S({s},{t}) off by more than its error bound"

    def test_top_k_within_error_bound(self, name, service_graph, oracle):
        planner = make_planner(service_graph)
        source = 5
        answer = planner.execute(TopKQuery(source, K, method=name)).result
        assert answer.k == K
        truth = oracle[source].copy()
        truth[source] = -np.inf
        kth_true = np.sort(truth)[-K]
        tolerance = PAIR_TOLERANCE[name]
        for node in answer.nodes:
            assert truth[int(node)] >= kth_true - 2 * tolerance, \
                f"{name}: top-{K} contains a node far below the true k-th score"

    def test_pair_trivial_self_similarity(self, name, service_graph):
        planner = make_planner(service_graph)
        outcome = planner.execute(SinglePairQuery(7, 7, method=name))
        assert outcome.result.score == pytest.approx(1.0, abs=1e-6)

    def test_routing_matches_declared_capabilities(self, name, service_graph):
        planner = make_planner(service_graph, cache_entries=0)
        algorithm = planner.instance(name)
        pair_route = planner.plan(SinglePairQuery(5, 9, method=name)).route
        top_route = planner.plan(TopKQuery(5, K, method=name)).route
        expected_pair = (ROUTE_NATIVE if QUERY_SINGLE_PAIR
                         in algorithm.native_capabilities else ROUTE_DERIVED)
        expected_top = (ROUTE_NATIVE if QUERY_TOP_K
                        in algorithm.native_capabilities else ROUTE_DERIVED)
        assert pair_route == expected_pair
        assert top_route == expected_top


# --------------------------------------------------------------------------- #
# native paths agree with their derived fallbacks
# --------------------------------------------------------------------------- #
NATIVE_TOP_K_METHODS = ["sling", "linearization", "prsim"]
DETERMINISTIC_NATIVE_PAIR_METHODS = ["sling", "mc", "power-method"]


@pytest.mark.parametrize("name", NATIVE_TOP_K_METHODS)
def test_native_top_k_set_matches_derived(name, service_graph):
    native = registry.create(name, service_graph, CONFIGS[name]).preprocess()
    derived = registry.create(name, service_graph, CONFIGS[name]).preprocess()
    for source in (5, 23, 57):
        native_answer = native.top_k(source, K)
        derived_answer = derived.single_source(source).top_k(K)
        assert native_answer.node_set() == derived_answer.node_set(), \
            f"{name}: native top-k set diverged from the derived path"
        assert native_answer.stats["native_top_k"] == 1.0


@pytest.mark.parametrize("name", DETERMINISTIC_NATIVE_PAIR_METHODS)
def test_native_pair_matches_derived(name, service_graph):
    algorithm = registry.create(name, service_graph, CONFIGS[name]).preprocess()
    for source, target in ((5, 9), (23, 40), (3, 3)):
        native_score = algorithm.single_pair(source, target).score
        derived_score = float(algorithm.single_source(source).scores[target])
        assert native_score == pytest.approx(derived_score, abs=1e-9), \
            f"{name}: native pair diverged from the derived score"


def test_sling_early_stop_certifies_on_fine_epsilon(service_graph):
    # A fine ε means a deep level schedule; the suffix-tail certification
    # must stop early and still reproduce the full-depth top-k set.
    sling = registry.create("sling", service_graph,
                            {"epsilon": 1e-4, "seed": 7}).preprocess()
    answer = sling.top_k(5, 5)
    assert answer.stats["certified"] == 1.0
    assert answer.stats["levels_used"] < answer.stats["levels_total"]
    derived = sling.single_source(5).top_k(5)
    assert answer.node_set() == derived.node_set()


def test_top_k_set_certified_helper():
    scores = np.array([0.9, 0.5, 0.4, 0.1, 0.05])
    assert top_k_set_certified(scores, 2, 0.05)       # gap 0.5-0.4=0.1 ≥ 0.05
    assert not top_k_set_certified(scores, 2, 0.2)    # gap 0.1 < 0.2
    # Excluding the top entry shifts the boundary: gap 0.4-0.1 = 0.3.
    assert top_k_set_certified(scores, 2, 0.2, exclude=0)
    assert not top_k_set_certified(scores, 2, 0.35, exclude=0)
    assert top_k_set_certified(scores, 2, 0.0)
    # Degenerate k: refuse to certify so callers keep accumulating levels.
    assert not top_k_set_certified(scores, 5, 0.01)


# --------------------------------------------------------------------------- #
# cache semantics
# --------------------------------------------------------------------------- #
class TestResultCacheAndRouting:
    def test_repeat_query_is_cached_without_recompute(self, service_graph,
                                                      monkeypatch):
        planner = make_planner(service_graph)
        algorithm = planner.instance("parsim")
        calls = {"count": 0}
        original = type(algorithm).single_source_batch

        def counting(self, sources):
            calls["count"] += 1
            return original(self, sources)

        monkeypatch.setattr(type(algorithm), "single_source_batch", counting)
        first = planner.execute(SingleSourceQuery(5, method="parsim"))
        second = planner.execute(SingleSourceQuery(5, method="parsim"))
        assert calls["count"] == 1
        assert first.plan.route == ROUTE_DERIVED
        assert second.plan.route == ROUTE_CACHED
        assert second.result is first.result

    def test_pair_and_topk_derive_from_cached_vector(self, service_graph,
                                                     monkeypatch):
        planner = make_planner(service_graph)
        algorithm = planner.instance("parsim")
        calls = {"count": 0}
        original = type(algorithm).single_source_batch

        def counting(self, sources):
            calls["count"] += 1
            return original(self, sources)

        monkeypatch.setattr(type(algorithm), "single_source_batch", counting)
        vector = planner.execute(SingleSourceQuery(5, method="parsim"))
        pair = planner.execute(SinglePairQuery(5, 9, method="parsim"))
        top = planner.execute(TopKQuery(5, K, method="parsim"))
        assert calls["count"] == 1
        assert pair.plan.route == ROUTE_CACHED_DERIVED
        assert top.plan.route == ROUTE_CACHED_DERIVED
        assert pair.result.score == pytest.approx(
            float(vector.result.scores[9]))
        assert top.result.node_set() == vector.result.top_k(K).node_set()

    def test_lru_eviction(self, service_graph):
        planner = make_planner(service_graph, cache_entries=2)
        planner.execute(SinglePairQuery(5, 9, method="sling"))
        planner.execute(SinglePairQuery(5, 10, method="sling"))
        planner.execute(SinglePairQuery(5, 11, method="sling"))
        # Capacity 2: the oldest entry fell out, so the first pair recomputes.
        outcome = planner.execute(SinglePairQuery(5, 9, method="sling"))
        assert outcome.plan.route == ROUTE_NATIVE

    def test_cache_disabled(self, service_graph):
        planner = make_planner(service_graph, cache_entries=0)
        first = planner.execute(SinglePairQuery(5, 9, method="sling"))
        second = planner.execute(SinglePairQuery(5, 9, method="sling"))
        assert first.plan.route == ROUTE_NATIVE
        assert second.plan.route == ROUTE_NATIVE

    def test_result_cache_lru_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1          # refreshes "a"
        cache.put("c", 3)                    # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.hits == 3 and cache.misses == 1


# --------------------------------------------------------------------------- #
# coalescing and cost-aware routing
# --------------------------------------------------------------------------- #
class TestCoalescing:
    def test_batch_coalesces_into_one_call(self, service_graph, monkeypatch):
        planner = make_planner(service_graph, cache_entries=0)
        algorithm = planner.instance("parsim")
        seen = []
        original = type(algorithm).single_source_batch

        def recording(self, sources):
            seen.append(list(sources))
            return original(self, sources)

        monkeypatch.setattr(type(algorithm), "single_source_batch", recording)
        queries = [SingleSourceQuery(s, method="parsim") for s in (9, 5, 23, 5)]
        outcomes = planner.answer(queries)
        assert seen == [[5, 9, 23]]          # one call, deduped, sorted
        assert [o.result.source for o in outcomes] == [9, 5, 23, 5]
        assert outcomes[1].result is outcomes[3].result
        stats = planner.stats()
        assert stats["coalesced_batches"] == 1.0
        assert stats["coalesced_queries"] == 4.0

    def test_mixed_kinds_share_the_micro_batch(self, service_graph, monkeypatch):
        planner = make_planner(service_graph, cache_entries=0)
        algorithm = planner.instance("parsim")
        seen = []
        original = type(algorithm).single_source_batch

        def recording(self, sources):
            seen.append(list(sources))
            return original(self, sources)

        monkeypatch.setattr(type(algorithm), "single_source_batch", recording)
        outcomes = planner.answer([
            SinglePairQuery(5, 9, method="parsim"),
            TopKQuery(5, K, method="parsim"),
            SingleSourceQuery(23, method="parsim"),
        ])
        assert seen == [[5, 23]]
        assert outcomes[0].plan.batched and outcomes[1].plan.batched

    def test_same_source_pair_flood_routes_through_one_pass(self, service_graph,
                                                            monkeypatch):
        # Many pair queries for one source: the cost model (seed ratio 0.5
        # per native pair) makes one coalesced single-source pass cheaper,
        # so the planner keeps the flood together even though ExactSim has a
        # native pair path.
        planner = make_planner(service_graph, cache_entries=0)
        queries = [SinglePairQuery(5, t, method="exactsim") for t in (9, 10, 11)]
        outcomes = planner.answer(queries)
        assert all(o.plan.route == ROUTE_DERIVED for o in outcomes)
        assert planner.stats()["coalesced_batches"] == 1.0

    def test_lone_pair_takes_the_native_path(self, service_graph):
        planner = make_planner(service_graph, cache_entries=0)
        outcome = planner.execute(SinglePairQuery(5, 9, method="exactsim"))
        assert outcome.plan.route == ROUTE_NATIVE
        assert outcome.result.stats.get("native_single_pair") == 1.0


# --------------------------------------------------------------------------- #
# planner plumbing
# --------------------------------------------------------------------------- #
class TestPlannerPlumbing:
    def test_default_method_applies(self, service_graph):
        planner = make_planner(service_graph, default_method="parsim")
        outcome = planner.execute(SingleSourceQuery(5))
        assert outcome.plan.method == "parsim"
        assert outcome.result.algorithm == "parsim"

    def test_unknown_method_rejected(self, service_graph):
        planner = make_planner(service_graph)
        with pytest.raises(KeyError, match="unknown algorithm"):
            planner.execute(SingleSourceQuery(5, method="no-such-method"))

    def test_register_prebuilt_instance(self, service_graph):
        from repro.baselines.parsim import ParSim

        planner = make_planner(service_graph)
        instance = ParSim(service_graph, iterations=3)
        name = planner.register(instance, "parsim-coarse")
        assert name == "parsim-coarse"
        outcome = planner.execute(SingleSourceQuery(5, method="parsim-coarse"))
        assert outcome.result.stats["iterations"] == 3.0

    def test_register_rejects_foreign_graph(self, service_graph, directed_graph):
        from repro.baselines.parsim import ParSim

        planner = make_planner(service_graph)
        with pytest.raises(ValueError, match="different graph"):
            planner.register(ParSim(directed_graph, iterations=3))

    def test_routing_table_covers_registry(self, service_graph):
        planner = make_planner(service_graph)
        rows = {row["method"]: row for row in planner.routing_table()}
        assert set(rows) == set(registry.available())
        assert rows["sling"]["single_pair"] == "native"
        assert rows["sling"]["top_k"] == "native"
        assert rows["parsim"]["single_pair"] == "derived"
        assert rows["exactsim"]["single_pair"] == "native"
        assert rows["linearization"]["top_k"] == "native"
        assert rows["prsim"]["top_k"] == "native"

    def test_index_auto_load(self, service_graph, tmp_path):
        built = registry.create("mc", service_graph, CONFIGS["mc"]).preprocess()
        built.save_index(tmp_path / f"{service_graph.name}.mc.npz")
        planner = make_planner(service_graph, index_dir=tmp_path)
        algorithm = planner.instance("mc")
        assert algorithm.prepared          # loaded, not rebuilt
        assert planner.stats()["index_loads"] == 1.0
        reference = built.single_source(5).scores
        outcome = planner.execute(SingleSourceQuery(5, method="mc"))
        assert np.array_equal(outcome.result.scores, reference)

    def test_index_saved_after_first_build(self, service_graph, tmp_path):
        planner = make_planner(service_graph, index_dir=tmp_path,
                               save_indices=True)
        path = tmp_path / f"{service_graph.name}.mc.npz"
        assert not path.exists()           # nothing eager at construction
        planner.execute(SingleSourceQuery(5, method="mc"))
        assert path.exists()
        assert planner.stats()["index_builds_saved"] == 1.0
        # A second planner loads what the first one built.
        second = make_planner(service_graph, index_dir=tmp_path)
        assert second.instance("mc").prepared
        assert second.stats()["index_loads"] == 1.0

    def test_cost_observations_refine_hints(self, service_graph):
        planner = make_planner(service_graph, cache_entries=0)
        seeded = planner.plan(TopKQuery(5, K, method="sling")).cost_hint
        planner.execute(TopKQuery(5, K, method="sling"))
        observed = planner.plan(TopKQuery(23, K, method="sling")).cost_hint
        assert observed != seeded          # hint now reflects a measurement
        assert observed > 0.0


# --------------------------------------------------------------------------- #
# adaptive refinement through the planner
# --------------------------------------------------------------------------- #
class TestAdaptiveRefinement:
    def test_refines_until_stable(self, service_graph):
        planner = make_planner(service_graph, cache_entries=0)
        refined = refine_top_k(
            planner, "sling", 5, K,
            initial=1e-1, refine=lambda e: e / 10.0, stop=lambda e: e <= 1e-4,
            stable_rounds=2)
        assert refined.refinement_rounds == len(refined.parameters)
        assert refined.parameters[0] == pytest.approx(1e-1)
        assert refined.top_k.k == K
        assert refined.total_query_seconds >= 0.0

    def test_rejects_methods_without_sweep_parameter(self, service_graph):
        planner = make_planner(service_graph)
        with pytest.raises(ValueError, match="no sweep parameter"):
            refine_top_k(planner, "power-method", 5, K,
                         initial=1.0, refine=lambda v: v, stop=lambda v: True)


# --------------------------------------------------------------------------- #
# wire format
# --------------------------------------------------------------------------- #
class TestWireFormat:
    def test_query_round_trip(self):
        for query in (SingleSourceQuery(3), SinglePairQuery(1, 2, method="mc"),
                      TopKQuery(4, 25)):
            assert query_from_dict(query_to_dict(query)) == query

    def test_aliases_and_defaults(self):
        assert query_from_dict({"type": "pair", "source": 1, "target": 2}) \
            == SinglePairQuery(1, 2)
        assert query_from_dict({"type": "topk", "source": 4}) == TopKQuery(4, 500)
        assert query_from_dict({"kind": "ss", "source": 9}) == SingleSourceQuery(9)

    def test_invalid_queries_rejected(self):
        with pytest.raises(ValueError, match="'type'"):
            query_from_dict({"source": 1})
        with pytest.raises(ValueError, match="unknown query type"):
            query_from_dict({"type": "bogus", "source": 1})
        with pytest.raises(ValueError, match="'target'"):
            query_from_dict({"type": "single_pair", "source": 1})
        with pytest.raises(ValueError, match="'source'"):
            query_from_dict({"type": "top_k"})

    def test_result_serialization_shapes(self, service_graph):
        planner = make_planner(service_graph)
        pair = result_to_dict(
            planner.execute(SinglePairQuery(5, 9, method="parsim")).result)
        assert pair["type"] == "single_pair" and "score" in pair
        top = result_to_dict(
            planner.execute(TopKQuery(5, 3, method="parsim")).result)
        assert top["type"] == "top_k" and len(top["nodes"]) == 3
        vector = result_to_dict(
            planner.execute(SingleSourceQuery(5, method="parsim")).result)
        assert vector["type"] == "single_source"
        assert vector["num_nodes"] == service_graph.num_nodes
        assert len(vector["top_nodes"]) == 10


# --------------------------------------------------------------------------- #
# sparse budget-window depth record (satellite)
# --------------------------------------------------------------------------- #
class TestSparseDepthRecord:
    def test_scalar_get_set(self):
        record = SparseDepthRecord()
        assert record.get(5) == 0
        record.set(5, 3)
        record.set(9, 1)
        assert record.get(5) == 3 and record.get(9) == 1 and record.get(7) == 0
        assert record.touched == 2

    def test_vectorized_matches_dense_reference(self):
        rng = np.random.default_rng(3)
        record = SparseDepthRecord()
        dense = np.zeros(1000, dtype=np.int64)
        for _ in range(50):
            nodes = rng.choice(1000, size=rng.integers(1, 30), replace=False)
            nodes = nodes.astype(np.int64)
            depth = int(rng.integers(1, 8))
            if rng.random() < 0.5:
                record.set_many(nodes, depth)
                dense[nodes] = depth
            else:
                probe = rng.choice(1000, size=20, replace=False).astype(np.int64)
                assert np.array_equal(record.get_many(probe), dense[probe])
        probe = np.arange(1000, dtype=np.int64)
        assert np.array_equal(record.get_many(probe), dense)

    def test_memory_scales_with_touched_nodes(self):
        record = SparseDepthRecord()
        record.set_many(np.arange(10, dtype=np.int64), 2)
        record.get_many(np.arange(10, dtype=np.int64))   # builds the view
        # A window that touched 10 nodes must not cost anywhere near the
        # 4-bytes-per-graph-node dense record on a million-node graph.
        assert record.memory_bytes() < 10_000

    def test_budget_window_uses_sparse_record(self, toy_graph):
        from repro.diagonal.local import DistributionCache

        cache = DistributionCache(toy_graph)
        window = cache.new_window(1_000.0)
        cache.distribution(2, 2, window)
        assert window._depths.touched <= toy_graph.num_nodes
        assert window._depths.get(2) == 2


# --------------------------------------------------------------------------- #
# stats wire format: one json.dumps away from the --stats record
# --------------------------------------------------------------------------- #
def test_planner_stats_fully_json_serializable(service_graph):
    import json

    planner = make_planner(service_graph)
    planner.execute(SinglePairQuery(1, 2, method="parsim"))
    stats = planner.stats()
    assert json.loads(json.dumps(stats)) == stats      # emitted verbatim
    assert isinstance(stats["breakers"], list)
    assert stats["queries"] == 1.0
