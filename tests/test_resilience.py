"""Resilience suite: deadlines, degraded answers, fallback routing, faults.

Four pillars, mirroring the serving layer's failure taxonomy:

* **cooperative deadlines** — every checkpoint kind surfaces expiry
  deterministically (fake clocks, zero budgets), degradable methods return
  *certified* partial answers whose bound dominates the true error against
  the PowerMethod oracle, and an unexpired deadline never perturbs a single
  float (bit-identity with the deadline-free run);
* **circuit breaker** — closed → open → half-open → closed transitions with
  exponential backoff, driven by an injected clock;
* **crash-safe persistence** — corrupt/truncated/bit-flipped index files
  surface as :class:`IndexPersistenceError` naming the path, an interrupted
  save leaves the previous index bit-identical, and the planner degrades a
  bad auto-load to a logged rebuild;
* **fault-injected serving** — deterministic fault plans drive the
  fallback route list (native → derived → cheapest other method), and a
  10k-line adversarial JSONL stream runs end-to-end with zero process
  deaths and one output line per input line.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms import registry
from repro.baselines.base import IndexPersistenceError
from repro.cli import main
from repro.graph.generators import preferential_attachment_graph
from repro.graph.io import write_edge_list
from repro.kernels.multiprop import MultiPropagation
from repro.service import (
    CircuitBreaker,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultRule,
    InjectedFault,
    QueryPlanner,
    QueryValidationError,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    deadline_scope,
    query_from_dict,
    refine_top_k,
    validate_query,
)
from repro.service.faults import adversarial_jsonl, flip_byte, truncate_file
from repro.service.planner import ROUTE_DERIVED, ROUTE_FALLBACK, ROUTE_NATIVE
from repro.service.resilience import (
    CHECKPOINT_LEVEL,
    CHECKPOINT_REFINE_ROUND,
    CHECKPOINT_WALK_BATCH,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.utils.deadline import active_deadline, checkpoint

CONFIGS = {
    "exactsim": {"epsilon": 5e-2, "seed": 7, "max_total_samples": 20_000},
    "mc": {"walks_per_node": 40, "walk_length": 8, "seed": 7},
    "linearization": {"samples_per_node": 60, "seed": 7},
    "parsim": {"iterations": 10},
    "prsim": {"epsilon": 3e-2, "seed": 7},
    "sling": {"epsilon": 3e-2, "seed": 7},
}

EXPIRED_MS = 0.0


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(120, 3, directed=False, seed=11)


@pytest.fixture(scope="module")
def oracle(graph):
    from repro.baselines.power_method import simrank_matrix

    return simrank_matrix(graph, decay=0.6)


def make_planner(graph, **overrides) -> QueryPlanner:
    options = dict(method_configs=CONFIGS, cache_entries=64)
    options.update(overrides)
    return QueryPlanner(graph, **options)


# --------------------------------------------------------------------------- #
# deadline primitives
# --------------------------------------------------------------------------- #
class TestDeadlinePrimitives:
    def test_fake_clock_expiry(self):
        clock = [0.0]
        deadline = Deadline(5.0, clock=lambda: clock[0])
        assert not deadline.expired() and deadline.remaining() == 5.0
        clock[0] = 5.0
        assert deadline.expired()
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("level")
        assert info.value.checkpoint == "level"
        assert info.value.budget_seconds == 5.0
        assert deadline.checkpoints_passed == 1

    def test_scope_installs_and_restores(self):
        assert active_deadline() is None
        deadline = Deadline(60.0)
        with deadline_scope(deadline):
            assert active_deadline() is deadline
            inner = Deadline(30.0)
            with deadline_scope(inner):
                assert active_deadline() is inner
            assert active_deadline() is deadline
        assert active_deadline() is None

    def test_none_scope_is_transparent(self):
        with deadline_scope(None):
            assert active_deadline() is None
            checkpoint("level")          # no-op without a deadline

    def test_checkpoint_raises_only_when_expired(self):
        clock = [0.0]
        with deadline_scope(Deadline(1.0, clock=lambda: clock[0])):
            checkpoint("walk-batch")     # not expired: passes
            clock[0] = 2.0
            with pytest.raises(DeadlineExceeded) as info:
                checkpoint("walk-batch")
        assert info.value.checkpoint == "walk-batch"


# --------------------------------------------------------------------------- #
# one test per wired checkpoint kind
# --------------------------------------------------------------------------- #
class TestCheckpointKinds:
    def test_level_checkpoint_in_multiprop(self, graph):
        engine = MultiPropagation.forward(graph, 2)
        engine.seed_units(np.array([3, 5], dtype=np.int64))
        with deadline_scope(Deadline(-1.0)):
            with pytest.raises(DeadlineExceeded) as info:
                engine.step()
        assert info.value.checkpoint == CHECKPOINT_LEVEL

    def test_walk_batch_checkpoint_in_engine(self, graph):
        algorithm = registry.create("exactsim", graph, CONFIGS["exactsim"])
        algorithm.ensure_prepared()
        with deadline_scope(Deadline(-1.0)):
            with pytest.raises(DeadlineExceeded) as info:
                algorithm.single_source(5)
        assert info.value.checkpoint == CHECKPOINT_WALK_BATCH

    def test_refine_round_checkpoint_in_adaptive(self, graph):
        planner = make_planner(graph, cache_entries=0)
        # Expired before the first round: no partial answer exists, so the
        # refinement re-raises rather than fabricating a result.
        with deadline_scope(Deadline(-1.0)):
            with pytest.raises(DeadlineExceeded) as info:
                refine_top_k(planner, "sling", 5, 5,
                             initial=1e-1, refine=lambda e: e / 10.0,
                             stop=lambda e: e <= 1e-3)
        assert info.value.checkpoint == CHECKPOINT_REFINE_ROUND

    def test_refine_degrades_after_first_round(self, graph):
        planner = make_planner(graph, cache_entries=0)
        clock = [0.0]
        deadline = Deadline(1.0, clock=lambda: clock[0])

        calls = {"count": 0}
        refine_fn_orig = lambda e: e / 10.0

        def refine_and_expire(value):
            # Burn the budget after the first completed round.
            clock[0] = 2.0
            return refine_fn_orig(value)

        with deadline_scope(deadline):
            refined = refine_top_k(planner, "sling", 5, 5,
                                   initial=1e-1, refine=refine_and_expire,
                                   stop=lambda e: e <= 1e-4)
        assert refined.degraded
        assert refined.refinement_rounds == 1
        assert refined.top_k.k == 5


# --------------------------------------------------------------------------- #
# degraded certified answers dominate the true error
# --------------------------------------------------------------------------- #
DEGRADABLE = ["sling", "prsim", "linearization"]


@pytest.mark.parametrize("name", DEGRADABLE)
class TestCertifiedDegradedAnswers:
    def test_single_source_bound_dominates_error(self, name, graph, oracle):
        algorithm = registry.create(name, graph, CONFIGS[name])
        algorithm.ensure_prepared()
        full = algorithm.single_source(5).scores
        with deadline_scope(Deadline(-1.0)):
            degraded = algorithm.single_source(5)
        stats = degraded.stats
        assert stats["degraded"] == 1.0
        bound = stats["certified_bound"]
        assert bound > 0.0
        # The certified bound must dominate the truncation error (distance
        # to the method's own full-depth answer) — that is what it certifies.
        assert np.max(np.abs(degraded.scores - full)) <= bound + 1e-12
        # ... and, for these deterministic-truncation methods, the distance
        # to the oracle is within the full answer's error plus the bound.
        full_err = np.max(np.abs(full - oracle[5]))
        assert np.max(np.abs(degraded.scores - oracle[5])) \
            <= full_err + bound + 1e-12

    def test_top_k_degrades_with_bound(self, name, graph):
        algorithm = registry.create(name, graph, CONFIGS[name])
        algorithm.ensure_prepared()
        with deadline_scope(Deadline(-1.0)):
            answer = algorithm.top_k(5, 5)
        assert answer.stats["degraded"] == 1.0
        assert answer.stats["certified_bound"] > 0.0
        assert answer.stats["certified"] == 0.0
        assert len(answer.nodes) == 5            # still a full top-k answer

    def test_batch_degrades_per_chunk(self, name, graph):
        algorithm = registry.create(name, graph, CONFIGS[name])
        algorithm.ensure_prepared()
        with deadline_scope(Deadline(-1.0)):
            results = algorithm.single_source_batch([3, 5, 9])
        assert len(results) == 3
        for result in results:
            assert result.stats["degraded"] == 1.0
            # A zero bound is a valid certificate: the skipped suffix
            # contributed nothing, so the degraded answer is exact.
            assert result.stats["certified_bound"] >= 0.0

    def test_unexpired_deadline_is_bit_identical(self, name, graph):
        baseline = registry.create(name, graph, CONFIGS[name])
        baseline.ensure_prepared()
        reference = baseline.single_source(7).scores
        shadowed = registry.create(name, graph, CONFIGS[name])
        shadowed.ensure_prepared()
        with deadline_scope(Deadline(3600.0)):
            scores = shadowed.single_source(7).scores
        assert np.array_equal(scores, reference)


# --------------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------------- #
class TestCircuitBreaker:
    def make(self, clock):
        return CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                              backoff_factor=2.0, max_timeout=100.0,
                              clock=lambda: clock[0])

    def test_open_half_open_close(self):
        clock = [0.0]
        breaker = self.make(clock)
        key = ("m", "native")
        for _ in range(3):
            assert breaker.allow(key)
            breaker.record_failure(key)
        assert breaker.state(key) == STATE_OPEN
        assert not breaker.allow(key)            # rejected while open
        clock[0] = 10.0                          # cooldown elapsed
        assert breaker.state(key) == STATE_HALF_OPEN
        assert breaker.allow(key)                # the probe
        assert not breaker.allow(key)            # only one probe at a time
        breaker.record_success(key)
        assert breaker.state(key) == STATE_CLOSED
        assert breaker.allow(key)

    def test_failed_probe_reopens_with_backoff(self):
        clock = [0.0]
        breaker = self.make(clock)
        key = ("m", "derived")
        for _ in range(3):
            breaker.record_failure(key)
        clock[0] = 10.0
        assert breaker.allow(key)                # probe admitted
        breaker.record_failure(key)              # probe fails
        assert breaker.state(key) == STATE_OPEN
        clock[0] = 29.9                          # 10 + 20s backoff not elapsed
        assert not breaker.allow(key)
        clock[0] = 30.0
        assert breaker.allow(key)
        breaker.record_success(key)
        assert breaker.state(key) == STATE_CLOSED
        rows = breaker.snapshot()
        assert rows[0]["trips"] == 2

    def test_success_resets_failure_streak(self):
        clock = [0.0]
        breaker = self.make(clock)
        key = ("m", "native")
        breaker.record_failure(key)
        breaker.record_failure(key)
        breaker.record_success(key)
        breaker.record_failure(key)
        breaker.record_failure(key)
        assert breaker.state(key) == STATE_CLOSED   # never hit 3 in a row

    def test_keys_are_independent(self):
        clock = [0.0]
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure(("m", "native"))
        assert breaker.state(("m", "native")) == STATE_OPEN
        assert breaker.state(("m", "derived")) == STATE_CLOSED
        assert breaker.allow(("other", "native"))


# --------------------------------------------------------------------------- #
# fault plans
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_exact_ordinals_fire(self):
        plan = FaultPlan([FaultRule(method="m", route="native", calls=(2,))])
        plan.on_route_call("m", "native", "single_source")       # call 1: pass
        with pytest.raises(InjectedFault):
            plan.on_route_call("m", "native", "single_source")   # call 2: boom
        plan.on_route_call("m", "native", "single_source")       # call 3: pass
        assert plan.injected == 1

    def test_wildcards_and_kind_filter(self):
        plan = FaultPlan([FaultRule(kind="top_k")])
        plan.on_route_call("any", "native", "single_source")
        with pytest.raises(InjectedFault):
            plan.on_route_call("any", "native", "top_k")

    def test_from_json_round_trip(self):
        text = json.dumps({"rules": [
            {"method": "sling", "route": "native", "calls": [1, 3]},
            {"action": "delay", "delay_seconds": 0.001},
        ]})
        plan = FaultPlan.from_json(text)
        assert len(plan.rules) == 2
        assert plan.rules[0].calls == (1, 3)
        assert plan.rules[1].action == "delay"

    def test_rejects_malformed_plans(self):
        with pytest.raises(ValueError, match="unknown fault rule fields"):
            FaultPlan.from_json('[{"bogus": 1}]')
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultPlan([FaultRule(action="explode")])
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan([FaultRule(calls=(0,))])
        with pytest.raises(ValueError, match="delay"):
            FaultPlan([FaultRule(action="delay")])


# --------------------------------------------------------------------------- #
# planner: fallback routing, timeouts, degraded serving
# --------------------------------------------------------------------------- #
class TestFallbackRouting:
    def test_native_failure_falls_back_to_derived(self, graph):
        plan = FaultPlan([FaultRule(method="sling", route="native")])
        planner = make_planner(graph, fault_plan=plan, cache_entries=0)
        outcome = planner.execute(SinglePairQuery(5, 9, method="sling"))
        assert outcome.ok
        assert outcome.plan.route == ROUTE_DERIVED
        assert outcome.plan.method == "sling"
        stats = planner.stats()
        assert stats["route_failures"] == 1.0
        assert stats["faults_injected"] == 1.0

    def test_derived_failure_falls_back_to_other_method(self, graph):
        plan = FaultPlan([FaultRule(method="parsim", route="derived")])
        planner = make_planner(graph, fault_plan=plan, cache_entries=0)
        outcome = planner.execute(SingleSourceQuery(5, method="parsim"))
        assert outcome.ok
        assert outcome.plan.route == ROUTE_FALLBACK
        assert outcome.plan.method != "parsim"
        assert planner.stats()["fallback_routes"] == 1.0

    def test_exhausted_routes_return_structured_error(self, graph):
        # Everything fails: the outcome carries a route_failed error, the
        # planner process survives.
        plan = FaultPlan([FaultRule()])      # match every route call
        planner = make_planner(graph, fault_plan=plan, cache_entries=0)
        outcome = planner.execute(SingleSourceQuery(5, method="parsim"))
        assert not outcome.ok
        assert outcome.error["code"] == "route_failed"
        assert "source 5" in outcome.error["message"]

    def test_breaker_quarantines_failing_route(self, graph):
        clock = [0.0]
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0,
                                 clock=lambda: clock[0])
        plan = FaultPlan([FaultRule(method="parsim", route="derived")])
        planner = make_planner(graph, fault_plan=plan, breaker=breaker,
                               cache_entries=0)
        for source in (1, 2, 3):
            planner.execute(SingleSourceQuery(source, method="parsim"))
        stats = planner.stats()
        assert stats["breaker_trips"] == 1.0
        assert stats["breaker_rejections"] == 1.0   # third query skipped it
        rows = planner.breakers()
        assert any(row["route"] == "parsim:derived"
                   and row["state"] == STATE_OPEN for row in rows)

    def test_timeout_is_structured_and_final(self, graph):
        planner = make_planner(graph, default_method="exactsim",
                               cache_entries=0)
        outcome = planner.execute(SingleSourceQuery(5), deadline_ms=EXPIRED_MS)
        assert not outcome.ok
        assert outcome.error["code"] == "timeout"
        assert outcome.error["checkpoint"] == CHECKPOINT_WALK_BATCH
        stats = planner.stats()
        assert stats["deadline_timeouts"] == 1.0
        assert stats["fallback_routes"] == 0.0      # budget spent: no retry

    def test_degraded_answers_served_not_cached(self, graph):
        planner = make_planner(graph)
        outcome = planner.execute(SingleSourceQuery(5, method="sling"),
                                  deadline_ms=EXPIRED_MS)
        assert outcome.ok and outcome.degraded
        assert outcome.result.stats["certified_bound"] > 0.0
        assert planner.stats()["degraded_answers"] == 1.0
        # The degraded vector must not satisfy the next (unbounded) query.
        second = planner.execute(SingleSourceQuery(5, method="sling"))
        assert second.plan.route == ROUTE_DERIVED
        assert not second.degraded

    def test_derived_topk_inherits_certified_bound(self, graph):
        planner = make_planner(graph, cache_entries=0)
        outcome = planner.execute(TopKQuery(23, 5, method="sling"),
                                  deadline_ms=EXPIRED_MS)
        assert outcome.ok and outcome.degraded
        assert outcome.result.stats["certified_bound"] > 0.0

    def test_unexpired_deadline_bit_identical_through_planner(self, graph):
        bare = make_planner(graph, cache_entries=0)
        timed = make_planner(graph, cache_entries=0, deadline_ms=3_600_000.0)
        for method in ("sling", "exactsim"):
            reference = bare.execute(
                SingleSourceQuery(7, method=method)).result.scores
            scores = timed.execute(
                SingleSourceQuery(7, method=method)).result.scores
            assert np.array_equal(scores, reference)

    def test_cache_keys_scoped_by_graph_fingerprint(self, graph):
        planner = make_planner(graph)
        other_graph = preferential_attachment_graph(120, 3, directed=False,
                                                    seed=12)
        other = make_planner(other_graph)
        key = planner._cache_key("parsim", SingleSourceQuery(5))
        other_key = other._cache_key("parsim", SingleSourceQuery(5))
        assert key != other_key


# --------------------------------------------------------------------------- #
# crash-safe persistence
# --------------------------------------------------------------------------- #
class TestCrashSafePersistence:
    def build(self, graph):
        return registry.create("mc", graph, CONFIGS["mc"]).preprocess()

    def test_corrupt_files_raise_naming_the_path(self, graph, tmp_path):
        path = tmp_path / "index.npz"
        self.build(graph).save_index(path)
        original = path.read_bytes()

        for corrupt in (lambda: truncate_file(path, 10),
                        lambda: truncate_file(path, len(original) // 2),
                        lambda: flip_byte(path, len(original) // 2)):
            path.write_bytes(original)
            corrupt()
            fresh = registry.create("mc", graph, CONFIGS["mc"])
            with pytest.raises(IndexPersistenceError) as info:
                fresh.load_index(path)
            assert str(path) in str(info.value)

    def test_missing_file_is_file_not_found(self, graph, tmp_path):
        fresh = registry.create("mc", graph, CONFIGS["mc"])
        with pytest.raises(FileNotFoundError):
            fresh.load_index(tmp_path / "nope.npz")

    def test_interrupted_save_preserves_previous_index(self, graph, tmp_path,
                                                       monkeypatch):
        path = tmp_path / "index.npz"
        algorithm = self.build(graph)
        algorithm.save_index(path)
        before = path.read_bytes()

        def torn_write(handle, **arrays):
            handle.write(b"torn garbage")
            raise KeyboardInterrupt

        monkeypatch.setattr(np, "savez_compressed", torn_write)
        with pytest.raises(KeyboardInterrupt):
            algorithm.save_index(path)
        assert path.read_bytes() == before       # bit-identical survivor
        assert list(tmp_path.glob(".*tmp*")) == []   # no tmp litter

    def test_planner_degrades_bad_autoload_to_rebuild(self, graph, tmp_path,
                                                      caplog):
        path = tmp_path / f"{graph.name}.mc.npz"
        self.build(graph).save_index(path)
        flip_byte(path, path.stat().st_size // 2)
        planner = make_planner(graph, index_dir=tmp_path)
        with caplog.at_level("WARNING", logger="repro.service.planner"):
            outcome = planner.execute(SingleSourceQuery(5, method="mc"))
        assert outcome.ok
        assert planner.stats()["index_load_failures"] == 1.0
        assert planner.stats()["index_loads"] == 0.0
        assert any("index-load-failed" in record.message
                   for record in caplog.records)


# --------------------------------------------------------------------------- #
# wire validation
# --------------------------------------------------------------------------- #
class TestWireValidation:
    def test_out_of_range_ids(self):
        with pytest.raises(QueryValidationError, match="source"):
            validate_query(SingleSourceQuery(120), 120)
        with pytest.raises(QueryValidationError, match="source"):
            validate_query(SingleSourceQuery(-1), 120)
        with pytest.raises(QueryValidationError, match="target"):
            validate_query(SinglePairQuery(0, 120), 120)

    def test_k_bounds(self):
        with pytest.raises(QueryValidationError, match="k must be"):
            validate_query(TopKQuery(0, 0), 120)
        with pytest.raises(QueryValidationError, match="k must be"):
            validate_query(TopKQuery(0, 121), 120)
        assert validate_query(TopKQuery(0, 120), 120).k == 120

    def test_epsilon_must_be_finite_positive(self):
        for epsilon in (float("nan"), float("inf"), 0.0, -1e-3):
            with pytest.raises(QueryValidationError, match="epsilon"):
                validate_query(SingleSourceQuery(0, epsilon=epsilon), 120)
        assert validate_query(SingleSourceQuery(0, epsilon=1e-3), 120)

    def test_parse_rejects_non_integer_fields(self):
        with pytest.raises(ValueError, match="'source'"):
            query_from_dict({"type": "single_source", "source": "zero"})
        with pytest.raises(ValueError, match="'k'"):
            query_from_dict({"type": "top_k", "source": 0, "k": "many"})
        with pytest.raises(ValueError, match="'epsilon'"):
            query_from_dict({"type": "single_source", "source": 0,
                             "epsilon": "tiny"})
        # Numeric strings (JSON-over-strings clients) still parse.
        query = query_from_dict({"type": "single_source", "source": "3",
                                 "epsilon": "NaN"})
        assert query.source == 3
        with pytest.raises(QueryValidationError):
            validate_query(query, 120)

    def test_negative_node_ids_as_floats(self):
        # -3.0 parses (integral float) but must fail range validation; a
        # fractional -3.5 must not even parse as a node id.
        query = query_from_dict({"type": "single_source", "source": -3.0})
        assert query.source == -3
        with pytest.raises(QueryValidationError, match="source"):
            validate_query(query, 120)
        with pytest.raises(ValueError, match="'source'"):
            query_from_dict({"type": "single_source", "source": -3.5})
        pair = query_from_dict({"type": "single_pair", "source": 0,
                                "target": -1.0})
        with pytest.raises(QueryValidationError, match="target"):
            validate_query(pair, 120)

    def test_non_finite_epsilon_on_the_wire(self):
        # Python's json module accepts the NaN/Infinity literals, so a wire
        # line can smuggle a non-finite epsilon past parsing; the serving
        # loop must turn it into a structured invalid_query, not a crash.
        from repro.service import parse_wire_line

        for literal in ("NaN", "Infinity", "-Infinity"):
            kind, payload = parse_wire_line(
                '{"type": "single_source", "source": 1, '
                f'"epsilon": {literal}}}', 120)
            assert kind == "error"
            assert payload["code"] == "invalid_query"
            assert "epsilon" in payload["error"]

    def test_k_larger_than_node_count_on_the_wire(self):
        from repro.service import parse_wire_line

        kind, payload = parse_wire_line(
            '{"type": "top_k", "source": 0, "k": 121}', 120)
        assert kind == "error" and payload["code"] == "invalid_query"
        kind, query = parse_wire_line(
            '{"type": "top_k", "source": 0, "k": 120}', 120)
        assert kind == "query" and query.k == 120

    def test_duplicate_keys_in_one_jsonl_object_last_wins(self):
        # json.loads keeps the last occurrence of a duplicated key; pin that
        # so a hostile line cannot make parse and serve disagree about the
        # query it named.
        from repro.service import parse_wire_line

        kind, query = parse_wire_line(
            '{"type": "top_k", "source": 1, "source": 5, "k": 3, "k": 7}',
            120)
        assert kind == "query"
        assert query.source == 5 and query.k == 7
        kind, payload = parse_wire_line(
            '{"type": "top_k", "source": 1, "source": 500}', 120)
        assert kind == "error" and payload["code"] == "invalid_query"


# --------------------------------------------------------------------------- #
# adversarial serving end-to-end (CLI)
# --------------------------------------------------------------------------- #
class TestAdversarialServing:
    @pytest.fixture()
    def edge_list(self, graph, tmp_path):
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        return str(path)

    def test_10k_adversarial_lines_zero_process_deaths(self, graph, edge_list,
                                                       tmp_path, capsys):
        lines = adversarial_jsonl(graph.num_nodes, 10_000)
        queries = tmp_path / "queries.jsonl"
        queries.write_text("\n".join(lines) + "\n")
        code = main(["answer", "--edge-list", edge_list, "--method", "parsim",
                     "--queries", str(queries), "--param", "iterations=5",
                     "--deadline-ms", "60000", "--stats"])
        captured = capsys.readouterr()
        out_lines = [json.loads(line)
                     for line in captured.out.splitlines() if line]
        assert code == 1                       # partial failure, not death
        assert len(out_lines) == len(lines)    # one answer per input line
        errors = [line for line in out_lines if "error" in line]
        answers = [line for line in out_lines if "error" not in line]
        assert errors and answers
        assert all("code" in line for line in errors)
        assert "serving stats" in captured.err

    def test_max_errors_aborts_the_stream(self, graph, edge_list, tmp_path,
                                          capsys):
        lines = ["not json"] * 50 + ['{"type": "single_source", "source": 1}']
        queries = tmp_path / "queries.jsonl"
        queries.write_text("\n".join(lines) + "\n")
        code = main(["answer", "--edge-list", edge_list, "--method", "parsim",
                     "--queries", str(queries), "--param", "iterations=5",
                     "--batch-size", "8", "--max-errors", "10"])
        captured = capsys.readouterr()
        assert code == 1
        assert "aborting" in captured.err
        out_lines = [line for line in captured.out.splitlines() if line]
        assert len(out_lines) < len(lines)     # stopped early

    def test_fault_plan_flag_drives_fallback(self, graph, edge_list, tmp_path,
                                             capsys):
        plan_path = tmp_path / "faults.json"
        plan_path.write_text(json.dumps(
            [{"method": "parsim", "route": "derived"}]))
        queries = tmp_path / "queries.jsonl"
        queries.write_text('{"type": "single_source", "source": 3}\n')
        # A loose --epsilon keeps whichever fallback method answers cheap.
        code = main(["answer", "--edge-list", edge_list, "--method", "parsim",
                     "--queries", str(queries), "--param", "iterations=5",
                     "--epsilon", "5e-2", "--seed", "7",
                     "--fault-plan", str(plan_path), "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        line = json.loads(captured.out.splitlines()[0])
        assert line["route"] == "fallback"
        assert line["method"] != "parsim"
        assert '"faults_injected": 1.0' in captured.err

    def test_deadline_flag_degrades_with_bound(self, graph, edge_list,
                                               tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        queries.write_text('{"type": "single_source", "source": 3, '
                           '"method": "sling"}\n')
        code = main(["answer", "--edge-list", edge_list, "--method", "sling",
                     "--queries", str(queries), "--epsilon", "3e-2",
                     "--seed", "7", "--deadline-ms", "0"])
        captured = capsys.readouterr()
        assert code == 0
        line = json.loads(captured.out.splitlines()[0])
        assert line["degraded"] is True
        assert line["certified_bound"] > 0.0

    def test_bad_fault_plan_exits_2(self, edge_list, capsys):
        code = main(["answer", "--edge-list", edge_list,
                     "--queries", "-", "--fault-plan", "/nonexistent.json"])
        assert code == 2
        assert "fault plan" in capsys.readouterr().err
