"""Unit tests for the diagonal correction matrix estimators."""

import numpy as np
import pytest

from repro.baselines.power_method import simrank_matrix
from repro.core.sampling import allocate_proportional, total_sample_budget
from repro.diagonal.basic import estimate_diagonal_basic
from repro.diagonal.exact import exact_diagonal, exact_diagonal_entry
from repro.diagonal.local import (
    estimate_diagonal_entry_local,
    estimate_diagonal_local,
    first_meeting_probabilities,
)
from repro.diagonal.parsim_approx import parsim_diagonal
from repro.graph.digraph import DiGraph
from repro.graph.transition import reverse_transition_matrix
from repro.ppr.hop_ppr import ppr_vector

DECAY = 0.6


def linearized_simrank(graph, diagonal, decay=DECAY, levels=60):
    """Reference implementation of S = Σ c^ℓ (P^ℓ)ᵀ diag(d) P^ℓ for validation."""
    matrix = reverse_transition_matrix(graph).toarray()
    power = np.eye(graph.num_nodes)
    total = np.zeros((graph.num_nodes, graph.num_nodes))
    for level in range(levels):
        total += (decay ** level) * power.T @ np.diag(diagonal) @ power
        power = matrix @ power
    return total


class TestExactDiagonal:
    def test_dangling_node_is_one(self, toy_graph, toy_simrank):
        assert exact_diagonal_entry(toy_graph, 0, toy_simrank, decay=DECAY) == 1.0

    def test_single_in_neighbor_is_one_minus_c(self, toy_graph, toy_simrank):
        for node in (1, 3, 4, 5):
            assert exact_diagonal_entry(toy_graph, node, toy_simrank, decay=DECAY) \
                == pytest.approx(1.0 - DECAY)

    def test_entries_in_valid_range(self, collab_graph, collab_simrank):
        diagonal = exact_diagonal(collab_graph, collab_simrank, decay=DECAY)
        assert np.all(diagonal >= 1.0 - DECAY - 1e-9)
        assert np.all(diagonal <= 1.0 + 1e-9)

    def test_linearization_identity_reconstructs_simrank(self, toy_graph, toy_simrank):
        """The defining property: S = Σ c^ℓ (P^ℓ)ᵀ D P^ℓ with the exact D."""
        diagonal = exact_diagonal(toy_graph, toy_simrank, decay=DECAY)
        reconstructed = linearized_simrank(toy_graph, diagonal)
        assert np.allclose(reconstructed, toy_simrank, atol=1e-6)

    def test_linearization_identity_on_collab_graph(self, collab_graph, collab_simrank):
        diagonal = exact_diagonal(collab_graph, collab_simrank, decay=DECAY)
        reconstructed = linearized_simrank(collab_graph, diagonal)
        assert np.max(np.abs(reconstructed - collab_simrank)) < 1e-5

    def test_shape_mismatch_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            exact_diagonal(toy_graph, np.eye(3), decay=DECAY)


class TestBasicEstimator:
    def test_matches_exact_diagonal(self, collab_graph, collab_simrank):
        exact = exact_diagonal(collab_graph, collab_simrank, decay=DECAY)
        allocation = np.full(collab_graph.num_nodes, 3000, dtype=np.int64)
        estimated = estimate_diagonal_basic(collab_graph, allocation, decay=DECAY, seed=1)
        assert np.max(np.abs(estimated - exact)) < 0.05

    def test_zero_allocation_defaults(self, toy_graph):
        allocation = np.zeros(toy_graph.num_nodes, dtype=np.int64)
        estimated = estimate_diagonal_basic(toy_graph, allocation, decay=DECAY, seed=1)
        assert estimated[0] == 1.0                      # dangling
        assert estimated[1] == pytest.approx(1.0 - DECAY)

    def test_negative_allocation_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            estimate_diagonal_basic(toy_graph, -np.ones(toy_graph.num_nodes), decay=DECAY)

    def test_wrong_length_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            estimate_diagonal_basic(toy_graph, np.ones(3), decay=DECAY)


class TestLocalExploitation:
    def test_first_meeting_probabilities_sum_to_meeting_probability(
            self, collab_graph, collab_simrank):
        """Σ_ℓ Z_ℓ(k) converges to 1 − D(k, k) as the level grows (Lemma 4)."""
        node = int(np.argmax(collab_graph.in_degrees))
        exact = exact_diagonal_entry(collab_graph, node, collab_simrank, decay=DECAY)
        levels = first_meeting_probabilities(collab_graph, node, 8, decay=DECAY)
        deterministic = sum(sum(level.values()) for level in levels)
        # The tail beyond level 8 is at most c^8 ≈ 0.017.
        assert deterministic <= 1.0 - exact + 1e-9
        assert deterministic >= 1.0 - exact - DECAY ** 8 - 1e-9

    def test_first_meeting_level_one_closed_form(self, toy_graph):
        """Z_1(k) = c · Σ_q (1/d_in(k))² over in-neighbours q (both walks move to q)."""
        levels = first_meeting_probabilities(toy_graph, 2, 1, decay=DECAY)
        expected_z1 = DECAY * 3 * (1.0 / 3.0) ** 2
        assert sum(levels[0].values()) == pytest.approx(expected_z1)

    def test_entry_local_trivial_cases(self, toy_graph):
        assert estimate_diagonal_entry_local(toy_graph, 0, 10, decay=DECAY).estimate == 1.0
        result = estimate_diagonal_entry_local(toy_graph, 1, 10, decay=DECAY)
        assert result.estimate == pytest.approx(1.0 - DECAY)
        assert result.exact

    def test_entry_local_matches_exact(self, collab_graph, collab_simrank):
        node = int(np.argmax(collab_graph.in_degrees))
        exact = exact_diagonal_entry(collab_graph, node, collab_simrank, decay=DECAY)
        result = estimate_diagonal_entry_local(collab_graph, node, 4000, decay=DECAY, seed=3)
        assert result.estimate == pytest.approx(exact, abs=0.03)
        assert result.chosen_level >= 1
        assert result.traversed_edges > 0

    def test_full_local_estimator_matches_exact(self, collab_graph, collab_simrank):
        exact = exact_diagonal(collab_graph, collab_simrank, decay=DECAY)
        budget = total_sample_budget(collab_graph.num_nodes, 0.05, decay=DECAY)
        ppr = ppr_vector(collab_graph, 0, decay=DECAY)
        allocation, _ = allocate_proportional(ppr, min(budget, 100_000))
        estimated = estimate_diagonal_local(collab_graph, allocation, decay=DECAY, seed=5)
        relevant = allocation > 0
        assert np.max(np.abs(estimated[relevant] - exact[relevant])) < 0.08

    def test_local_beats_or_matches_basic_at_equal_budget(self, collab_graph, collab_simrank):
        """Algorithm 3's deterministic part should not hurt accuracy."""
        exact = exact_diagonal(collab_graph, collab_simrank, decay=DECAY)
        node = int(np.argmax(collab_graph.in_degrees))
        pairs = 2000
        basic_errors = []
        local_errors = []
        for seed in range(3):
            basic = estimate_diagonal_basic(
                collab_graph, np.eye(1, collab_graph.num_nodes, node).ravel() * pairs,
                decay=DECAY, seed=seed)[node]
            local = estimate_diagonal_entry_local(collab_graph, node, pairs,
                                                  decay=DECAY, seed=seed).estimate
            basic_errors.append(abs(basic - exact[node]))
            local_errors.append(abs(local - exact[node]))
        assert np.mean(local_errors) <= np.mean(basic_errors) + 0.02


class TestParSimApproximation:
    def test_constant_value(self, collab_graph):
        diagonal = parsim_diagonal(collab_graph, decay=DECAY)
        assert np.all(diagonal == 1.0 - DECAY)

    def test_exact_trivial_nodes_flag(self, toy_graph):
        diagonal = parsim_diagonal(toy_graph, decay=DECAY, exact_trivial_nodes=True)
        assert diagonal[0] == 1.0
        assert diagonal[2] == pytest.approx(1.0 - DECAY)

    def test_differs_from_exact_on_high_degree_nodes(self, collab_graph, collab_simrank):
        """The approximation is exactly what creates ParSim's error plateau."""
        exact = exact_diagonal(collab_graph, collab_simrank, decay=DECAY)
        approx = parsim_diagonal(collab_graph, decay=DECAY)
        assert np.max(np.abs(exact - approx)) > 0.01
