"""Unit tests for the Personalized-PageRank substrate."""

import numpy as np
import pytest

from repro.graph.transition import TransitionOperator, reverse_transition_matrix
from repro.ppr.hop_ppr import hitting_probability_vectors, hop_ppr_vectors, ppr_vector
from repro.ppr.pagerank import pagerank, personalized_pagerank_power
from repro.ppr.push import forward_push_hop_ppr

DECAY = 0.6
SQRT_C = np.sqrt(DECAY)


class TestHopPPR:
    def test_hop_zero_is_scaled_indicator(self, collab_graph):
        result = hop_ppr_vectors(collab_graph, 5, 4, decay=DECAY)
        hop_zero = result.hop_dense(0)
        assert hop_zero[5] == pytest.approx(1.0 - SQRT_C)
        assert np.count_nonzero(hop_zero) == 1

    def test_hops_match_matrix_powers(self, toy_graph):
        result = hop_ppr_vectors(toy_graph, 2, 3, decay=DECAY)
        matrix = reverse_transition_matrix(toy_graph).toarray()
        indicator = np.zeros(toy_graph.num_nodes)
        indicator[2] = 1.0
        for level in range(4):
            expected = (1.0 - SQRT_C) * np.linalg.matrix_power(SQRT_C * matrix, level) @ indicator
            assert np.allclose(result.hop_dense(level), expected)

    def test_total_mass_at_most_one(self, collab_graph):
        result = hop_ppr_vectors(collab_graph, 0, 30, decay=DECAY)
        assert result.total.sum() <= 1.0 + 1e-9
        # No dangling nodes: mass converges towards 1 as hops grow.
        assert result.total.sum() > 0.95

    def test_dangling_source_keeps_only_hop_zero(self, toy_graph):
        result = hop_ppr_vectors(toy_graph, 0, 5, decay=DECAY)
        assert result.total.sum() == pytest.approx(1.0 - SQRT_C)

    def test_truncation_drops_small_entries(self, collab_graph):
        dense = hop_ppr_vectors(collab_graph, 1, 8, decay=DECAY)
        sparse_version = hop_ppr_vectors(collab_graph, 1, 8, decay=DECAY,
                                         truncation_threshold=1e-3)
        assert sparse_version.truncated
        assert sparse_version.nonzero_entries() <= dense.nonzero_entries()
        assert sparse_version.memory_bytes() <= dense.memory_bytes()

    def test_truncated_entries_below_threshold_only(self, collab_graph):
        threshold = 5e-3
        dense = hop_ppr_vectors(collab_graph, 1, 6, decay=DECAY)
        truncated = hop_ppr_vectors(collab_graph, 1, 6, decay=DECAY,
                                    truncation_threshold=threshold)
        for level in range(7):
            difference = dense.hop_dense(level) - truncated.hop_dense(level)
            assert np.all(difference >= -1e-15)
            assert np.all(difference <= threshold + 1e-15)

    def test_squared_norm(self, collab_graph):
        result = hop_ppr_vectors(collab_graph, 2, 10, decay=DECAY)
        assert result.squared_norm == pytest.approx(float(np.dot(result.total, result.total)))
        assert 0.0 < result.squared_norm <= 1.0

    def test_hop_level_out_of_range(self, collab_graph):
        result = hop_ppr_vectors(collab_graph, 2, 3, decay=DECAY)
        with pytest.raises(ValueError):
            result.hop_dense(4)

    def test_shared_operator(self, collab_graph):
        operator = TransitionOperator(collab_graph, DECAY)
        first = hop_ppr_vectors(collab_graph, 3, 4, decay=DECAY, operator=operator)
        second = hop_ppr_vectors(collab_graph, 3, 4, decay=DECAY)
        assert np.allclose(first.total, second.total)


class TestHittingAndFullPPR:
    def test_hitting_probability_shape(self, collab_graph):
        vectors = hitting_probability_vectors(collab_graph, 0, 5, decay=DECAY)
        assert vectors.shape == (6, collab_graph.num_nodes)
        assert vectors[0, 0] == 1.0

    def test_hitting_probabilities_decay_by_sqrt_c(self, cycle_graph):
        vectors = hitting_probability_vectors(cycle_graph, 0, 4, decay=DECAY)
        for level in range(5):
            assert vectors[level].sum() == pytest.approx(SQRT_C ** level)

    def test_ppr_vector_equals_hop_sum(self, collab_graph):
        full = ppr_vector(collab_graph, 4, decay=DECAY, tolerance=1e-14)
        hops = hop_ppr_vectors(collab_graph, 4, 120, decay=DECAY)
        assert np.allclose(full, hops.total, atol=1e-10)

    def test_ppr_vector_matches_power_iteration(self, collab_graph):
        full = ppr_vector(collab_graph, 4, decay=DECAY, tolerance=1e-14)
        restart = np.zeros(collab_graph.num_nodes)
        restart[4] = 1.0
        alternative = personalized_pagerank_power(collab_graph, restart,
                                                  alpha=1.0 - SQRT_C, decay=DECAY,
                                                  tolerance=1e-14)
        assert np.allclose(full, alternative, atol=1e-8)


class TestForwardPush:
    def test_push_underestimates_dense_hops(self, collab_graph):
        push = forward_push_hop_ppr(collab_graph, 3, 6, r_max=1e-4, decay=DECAY)
        dense = hop_ppr_vectors(collab_graph, 3, 6, decay=DECAY)
        for level in range(7):
            approx = push.hop_dense(level, collab_graph.num_nodes)
            exact = dense.hop_dense(level)
            assert np.all(approx <= exact + 1e-12)

    def test_push_error_shrinks_with_r_max(self, collab_graph):
        dense = hop_ppr_vectors(collab_graph, 3, 6, decay=DECAY)
        coarse = forward_push_hop_ppr(collab_graph, 3, 6, r_max=1e-2, decay=DECAY)
        fine = forward_push_hop_ppr(collab_graph, 3, 6, r_max=1e-5, decay=DECAY)
        coarse_error = np.abs(coarse.total_dense(collab_graph.num_nodes) - dense.total).max()
        fine_error = np.abs(fine.total_dense(collab_graph.num_nodes) - dense.total).max()
        assert fine_error <= coarse_error

    def test_residual_plus_estimates_account_for_all_mass(self, collab_graph):
        push = forward_push_hop_ppr(collab_graph, 3, 30, r_max=1e-3, decay=DECAY)
        total_estimate = push.total_dense(collab_graph.num_nodes).sum()
        # estimates + dropped residual + un-stopped tail mass ≈ 1.
        assert total_estimate <= 1.0 + 1e-9
        assert total_estimate + push.residual_mass <= 1.0 + 1e-6

    def test_push_memory_accounting(self, collab_graph):
        push = forward_push_hop_ppr(collab_graph, 3, 4, r_max=1e-3, decay=DECAY)
        assert push.pushed_entries > 0
        # Array-backed storage: one int64 index + one float64 value per entry.
        stored_entries = sum(level.nnz for level in push.levels)
        assert push.memory_bytes() == stored_entries * 16

    def test_residual_mass_conservation_across_seeds(self):
        """Regression: estimates + residual_mass account for the full unit of mass.

        The seed implementation silently lost mass absorbed at dangling nodes
        and the tail beyond the hop horizon; the kernel-based push accumulates
        every drop exactly once.
        """
        from repro.graph.generators import power_law_graph
        for seed in (0, 7, 42, 2020):
            graph = power_law_graph(150, 4.0, exponent=2.1, directed=True,
                                    seed=seed)
            push = forward_push_hop_ppr(graph, seed % graph.num_nodes, 12,
                                        r_max=1e-4, decay=DECAY)
            total_estimate = push.total_dense(graph.num_nodes).sum()
            assert total_estimate + push.residual_mass == pytest.approx(1.0, abs=1e-9)

    def test_estimates_dict_view_matches_reference(self, collab_graph):
        """The backward-compat dict views carry the seed implementation's content."""
        from repro.kernels.reference import _reference_forward_push_hop_ppr
        push = forward_push_hop_ppr(collab_graph, 3, 5, r_max=1e-3, decay=DECAY)
        expected_levels, _, _ = _reference_forward_push_hop_ppr(
            collab_graph, 3, 5, 1e-3, decay=DECAY)
        assert len(push.estimates) == len(expected_levels)
        for view, expected in zip(push.estimates, expected_levels):
            assert set(view) == set(expected)
            for node, value in expected.items():
                assert view[node] == pytest.approx(value, abs=1e-12)

    def test_invalid_r_max(self, collab_graph):
        with pytest.raises(ValueError):
            forward_push_hop_ppr(collab_graph, 3, 4, r_max=0.0)


class TestPageRank:
    def test_pagerank_sums_to_one(self, directed_graph):
        rank = pagerank(directed_graph)
        assert rank.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(rank >= 0.0)

    def test_pagerank_empty_graph(self):
        from repro.graph.digraph import DiGraph
        assert pagerank(DiGraph.empty(0)).shape == (0,)

    def test_pagerank_favours_hub(self, hub_graph):
        # All leaves point to the hub, so the hub (node 0) must rank highest.
        rank = pagerank(hub_graph)
        assert np.argmax(rank) == 0

    def test_personalized_pagerank_mass(self, collab_graph):
        restart = np.zeros(collab_graph.num_nodes)
        restart[7] = 1.0
        rank = personalized_pagerank_power(collab_graph, restart, alpha=0.2, decay=DECAY)
        assert rank.sum() == pytest.approx(1.0, abs=1e-6)

    def test_personalized_pagerank_validates_restart(self, collab_graph):
        with pytest.raises(ValueError):
            personalized_pagerank_power(collab_graph, np.ones(3), alpha=0.2)
