"""Unit tests for the meeting-probability estimators (eq. 2 and Algorithm 2)."""

import numpy as np
import pytest

from repro.diagonal.exact import exact_diagonal_entry
from repro.randomwalk.engine import SqrtCWalkEngine
from repro.randomwalk.meeting import (
    estimate_diagonal_entry,
    estimate_meeting_probability,
    estimate_tail_meeting_probability,
)

DECAY = 0.6


class TestMeetingProbability:
    def test_same_node_is_one(self, toy_graph):
        assert estimate_meeting_probability(toy_graph, 3, 3, 10, decay=DECAY) == 1.0

    def test_matches_simrank_on_toy_graph(self, toy_graph, toy_simrank):
        estimate = estimate_meeting_probability(toy_graph, 1, 2, 20000, decay=DECAY, seed=7)
        assert estimate == pytest.approx(toy_simrank[1, 2], abs=0.02)

    def test_matches_simrank_on_collab_graph(self, collab_graph, collab_simrank):
        estimate = estimate_meeting_probability(collab_graph, 4, 9, 8000, decay=DECAY, seed=3)
        assert estimate == pytest.approx(collab_simrank[4, 9], abs=0.03)

    def test_zero_for_unreachable_pair(self):
        # Two disconnected edges: walks from 1 and 3 can never be on the same node.
        from repro.graph.digraph import DiGraph
        graph = DiGraph.from_edges([(0, 1), (2, 3)])
        assert estimate_meeting_probability(graph, 1, 3, 500, decay=DECAY, seed=1) == 0.0

    def test_invalid_nodes_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            estimate_meeting_probability(toy_graph, 0, 99, 10)


class TestDiagonalEntry:
    def test_dangling_node_exact_one(self, toy_graph):
        assert estimate_diagonal_entry(toy_graph, 0, 10, decay=DECAY) == 1.0

    def test_single_in_neighbor_exact(self, toy_graph):
        # Nodes 1, 3, 4, 5 all have exactly one in-neighbour.
        for node in (1, 3, 4, 5):
            assert estimate_diagonal_entry(toy_graph, node, 10, decay=DECAY) \
                == pytest.approx(1.0 - DECAY)

    def test_matches_exact_diagonal_on_toy_graph(self, toy_graph, toy_simrank):
        expected = exact_diagonal_entry(toy_graph, 2, toy_simrank, decay=DECAY)
        estimate = estimate_diagonal_entry(toy_graph, 2, 30000, decay=DECAY, seed=5)
        assert estimate == pytest.approx(expected, abs=0.02)

    def test_matches_exact_diagonal_on_collab_graph(self, collab_graph, collab_simrank):
        hub = int(np.argmax(collab_graph.in_degrees))
        expected = exact_diagonal_entry(collab_graph, hub, collab_simrank, decay=DECAY)
        estimate = estimate_diagonal_entry(collab_graph, hub, 15000, decay=DECAY, seed=9)
        assert estimate == pytest.approx(expected, abs=0.03)

    def test_shared_engine_is_used(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=1)
        value = estimate_diagonal_entry(collab_graph, 5, 200, decay=DECAY, engine=engine)
        assert 0.0 <= value <= 1.0

    def test_requires_positive_pairs(self, collab_graph):
        with pytest.raises(ValueError):
            estimate_diagonal_entry(collab_graph, 5, 0, decay=DECAY)


class TestTailEstimate:
    def test_tail_bounded_by_c_power(self, collab_graph):
        tail = estimate_tail_meeting_probability(collab_graph, 3, 2000, 3, decay=DECAY, seed=4)
        assert 0.0 <= tail <= DECAY ** 3 + 1e-12

    def test_skip_zero_equals_total_meeting_probability(self, collab_graph, collab_simrank):
        # With no prefix the tail is the full meeting probability 1 − D(k, k).
        node = int(np.argmax(collab_graph.in_degrees))
        expected = 1.0 - exact_diagonal_entry(collab_graph, node, collab_simrank, decay=DECAY)
        tail = estimate_tail_meeting_probability(collab_graph, node, 15000, 0,
                                                 decay=DECAY, seed=6)
        assert tail == pytest.approx(expected, abs=0.03)

    def test_negative_skip_rejected(self, collab_graph):
        with pytest.raises(ValueError):
            estimate_tail_meeting_probability(collab_graph, 3, 100, -1, decay=DECAY)

    def test_deterministic_plus_tail_consistency(self, collab_graph, collab_simrank):
        """Σ_{ℓ≤L} Z_ℓ (deterministic) + tail estimate ≈ 1 − D(k,k)."""
        from repro.diagonal.local import first_meeting_probabilities
        node = int(np.argmax(collab_graph.in_degrees))
        levels = first_meeting_probabilities(collab_graph, node, 3, decay=DECAY)
        deterministic = sum(sum(level.values()) for level in levels)
        tail = estimate_tail_meeting_probability(collab_graph, node, 15000, 3,
                                                 decay=DECAY, seed=8)
        expected = 1.0 - exact_diagonal_entry(collab_graph, node, collab_simrank, decay=DECAY)
        assert deterministic + tail == pytest.approx(expected, abs=0.03)
