"""Tests for the shared GraphContext."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.parsim import ParSim
from repro.baselines.prsim import PRSim
from repro.graph.context import GraphContext
from repro.graph.generators import preferential_attachment_graph


class TestSharedCache:
    def test_shared_returns_one_context_per_graph(self, collab_graph):
        first = GraphContext.shared(collab_graph)
        second = GraphContext.shared(collab_graph)
        assert first is second

    def test_distinct_graphs_get_distinct_contexts(self, collab_graph, directed_graph):
        assert GraphContext.shared(collab_graph) is not \
            GraphContext.shared(directed_graph)

    def test_structurally_equal_graphs_share(self):
        first = preferential_attachment_graph(60, 2, directed=False, seed=3)
        second = preferential_attachment_graph(60, 2, directed=False, seed=3)
        assert first is not second and first == second
        assert GraphContext.shared(first) is GraphContext.shared(second)


class TestOperatorCache:
    def test_operator_cached_per_decay(self, collab_graph):
        context = GraphContext(collab_graph)
        assert context.operator(0.6) is context.operator(0.6)
        assert context.operator(0.6) is not context.operator(0.8)

    def test_algorithms_share_the_transition_matrices(self, collab_graph):
        context = GraphContext(collab_graph)
        first = ParSim(collab_graph, context=context)
        second = PRSim(collab_graph, epsilon=1e-1, seed=1, context=context)
        assert first._operator is second._operator

    def test_default_construction_uses_shared_context(self, collab_graph):
        first = ParSim(collab_graph)
        second = ParSim(collab_graph, iterations=5)
        assert first.context is second.context
        assert first._operator is second._operator

    def test_context_for_wrong_graph_rejected(self, collab_graph, directed_graph):
        context = GraphContext(directed_graph)
        with pytest.raises(ValueError, match="different graph"):
            ParSim(collab_graph, context=context)


class TestViewsAndAccounting:
    def test_array_views_delegate_to_graph(self, toy_graph):
        context = GraphContext(toy_graph)
        assert context.num_nodes == toy_graph.num_nodes
        assert np.array_equal(context.in_indptr, toy_graph.in_indptr)
        assert np.array_equal(context.out_indices, toy_graph.out_indices)
        assert np.array_equal(context.in_degrees, toy_graph.in_degrees)

    def test_memory_bytes_grows_with_cached_operators(self, collab_graph):
        context = GraphContext(collab_graph)
        base = context.memory_bytes()
        operator = context.operator(0.6)
        operator.matrix  # force the sparse build
        assert context.memory_bytes() > base

    def test_walk_engine_not_cached(self, collab_graph):
        context = GraphContext(collab_graph)
        assert context.walk_engine(seed=1) is not context.walk_engine(seed=1)


class TestSharedCacheLifetime:
    def test_shared_entries_evict_when_unreferenced(self):
        import gc
        import weakref
        graph = preferential_attachment_graph(40, 2, directed=False, seed=9)
        context_ref = weakref.ref(GraphContext.shared(graph))
        graph_ref = weakref.ref(graph)
        del graph
        gc.collect()
        assert context_ref() is None, "shared context kept alive with no holders"
        assert graph_ref() is None, "graph leaked through the shared cache"
