"""Unit tests for the √c-walk engine."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import ring_graph, star_graph
from repro.ppr.hop_ppr import hitting_probability_vectors
from repro.randomwalk.engine import SqrtCWalkEngine, WalkBatch

DECAY = 0.6


class TestWalkBatch:
    def test_shapes_and_properties(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=1)
        batch = engine.walks_from(0, 50, max_steps=12)
        assert batch.num_walks == 50
        assert batch.max_steps == 12
        assert batch.positions.shape == (13, 50)

    def test_step_zero_is_start_node(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=1)
        batch = engine.walks_from(7, 20)
        assert np.all(batch.nodes_at(0) == 7)

    def test_nodes_at_out_of_range(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=1)
        batch = engine.walks_from(0, 5, max_steps=3)
        with pytest.raises(ValueError):
            batch.nodes_at(4)

    def test_lengths_consistent_with_positions(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=2)
        batch = engine.walks_from(3, 40, max_steps=20)
        for walk in range(batch.num_walks):
            length = int(batch.lengths[walk])
            assert batch.positions[length, walk] >= 0
            if length < batch.max_steps:
                assert batch.positions[length + 1, walk] == -1

    def test_visit_counts_match_positions(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=3)
        batch = engine.walks_from(0, 30, max_steps=10)
        counts = batch.visit_counts(collab_graph.num_nodes)
        assert counts.sum() == int((batch.positions >= 0).sum())

    def test_memory_bytes(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=3)
        batch = engine.walks_from(0, 10, max_steps=5)
        assert batch.memory_bytes() == batch.positions.nbytes + batch.lengths.nbytes


class TestEngineBehaviour:
    def test_determinism_with_seed(self, collab_graph):
        first = SqrtCWalkEngine(collab_graph, DECAY, seed=42).walks_from(1, 25, max_steps=8)
        second = SqrtCWalkEngine(collab_graph, DECAY, seed=42).walks_from(1, 25, max_steps=8)
        assert np.array_equal(first.positions, second.positions)

    def test_walk_moves_to_in_neighbors_only(self, toy_graph):
        engine = SqrtCWalkEngine(toy_graph, DECAY, seed=5)
        batch = engine.walks_from(2, 200, max_steps=1)
        step_one = batch.nodes_at(1)
        moved = step_one[step_one >= 0]
        assert set(np.unique(moved).tolist()) <= {0, 1, 4}

    def test_dangling_start_stops_immediately(self, toy_graph):
        engine = SqrtCWalkEngine(toy_graph, DECAY, seed=5)
        batch = engine.walks_from(0, 20, max_steps=5)
        assert np.all(batch.nodes_at(1) == -1)
        assert np.all(batch.lengths == 0)

    def test_stopping_rate_matches_sqrt_c(self, cycle_graph):
        # On a cycle every node has exactly one in-neighbour, so survival is
        # governed purely by the √c coin.
        engine = SqrtCWalkEngine(cycle_graph, DECAY, seed=11)
        batch = engine.walks_from(0, 4000, max_steps=1)
        survival = float((batch.nodes_at(1) >= 0).mean())
        assert survival == pytest.approx(np.sqrt(DECAY), abs=0.03)

    def test_walks_from_nodes_vectorised_starts(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=2)
        starts = np.array([0, 5, 9, 5])
        batch = engine.walks_from_nodes(starts, max_steps=4)
        assert np.array_equal(batch.nodes_at(0), starts)

    def test_walks_from_nodes_rejects_bad_input(self, collab_graph):
        engine = SqrtCWalkEngine(collab_graph, DECAY, seed=2)
        with pytest.raises(ValueError):
            engine.walks_from_nodes(np.array([[0, 1]]))
        with pytest.raises(ValueError):
            engine.walks_from_nodes(np.array([collab_graph.num_nodes + 5]))

    def test_invalid_decay(self, collab_graph):
        with pytest.raises(ValueError):
            SqrtCWalkEngine(collab_graph, 1.0)

    def test_visit_distribution_matches_hitting_probabilities(self, toy_graph):
        engine = SqrtCWalkEngine(toy_graph, DECAY, seed=9)
        empirical = engine.estimate_visit_distribution(2, 8000, max_steps=4)
        exact = hitting_probability_vectors(toy_graph, 2, 4, decay=DECAY)
        assert np.max(np.abs(empirical - exact)) < 0.03


class TestPairWalks:
    def test_single_in_neighbor_node_always_meets_when_surviving(self):
        # Node 1 in a 2-cycle has exactly one in-neighbour: both walks move
        # together, so they meet iff both survive the first step (prob c).
        graph = DiGraph.from_edges([(0, 1), (1, 0)])
        engine = SqrtCWalkEngine(graph, DECAY, seed=3)
        met = engine.pair_walks_meet(1, 6000, max_steps=30)
        assert met.mean() == pytest.approx(
            DECAY / (1.0 - 0.0), abs=0.05) or met.mean() > 0.5
        # More precisely: meeting prob = c + ... but on a 2-cycle they stay
        # together forever once moving, so Pr[meet] = c / 1 is a lower bound.
        assert met.mean() >= DECAY - 0.05

    def test_star_hub_pairs_meet_with_probability_c_over_degree(self, hub_graph):
        # Two walks from the hub each pick one of the 9 leaves; they meet only
        # if both survive (c) and pick the same leaf (1/9); leaves are dangling
        # so no later meetings are possible.
        engine = SqrtCWalkEngine(hub_graph, DECAY, seed=13)
        met = engine.pair_walks_meet(0, 20000, max_steps=5)
        expected = DECAY / 9.0
        assert met.mean() == pytest.approx(expected, abs=0.01)

    def test_skip_steps_excludes_prefix_meetings(self, hub_graph):
        # With a non-stop prefix of 1 step every pair reaches the leaves; the
        # leaves are dangling so no meeting can happen after the prefix.
        engine = SqrtCWalkEngine(hub_graph, DECAY, seed=13)
        met = engine.pair_walks_meet(0, 2000, max_steps=5, skip_steps=1)
        assert met.sum() == 0

    def test_terminal_nodes_non_stop_prefix(self, hub_graph):
        engine = SqrtCWalkEngine(hub_graph, DECAY, seed=1)
        finals = engine.terminal_nodes(0, 100, steps=1)
        assert np.all(finals >= 1)          # every walk moved to a leaf
        finals_two = engine.terminal_nodes(0, 100, steps=2)
        assert np.all(finals_two == -1)     # leaves are dangling
