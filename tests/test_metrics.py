"""Unit tests for the accuracy metrics and the pooling methodology."""

import numpy as np
import pytest

from repro.core.result import TopKResult
from repro.metrics.accuracy import (
    kendall_tau,
    max_error,
    mean_error,
    ndcg_at_k,
    precision_at_k,
    top_k_nodes,
)
from repro.metrics.pooling import (
    monte_carlo_oracle,
    pooled_ground_truth,
    pooled_precision,
)

DECAY = 0.6


class TestErrorMetrics:
    def test_max_error_basic(self):
        assert max_error(np.array([0.1, 0.5]), np.array([0.2, 0.5])) == pytest.approx(0.1)

    def test_max_error_exclude(self):
        estimate = np.array([0.0, 0.5, 0.9])
        reference = np.array([1.0, 0.5, 0.9])
        assert max_error(estimate, reference) == 1.0
        assert max_error(estimate, reference, exclude=0) == 0.0

    def test_max_error_shape_mismatch(self):
        with pytest.raises(ValueError):
            max_error(np.zeros(3), np.zeros(4))

    def test_mean_error(self):
        assert mean_error(np.array([0.0, 1.0]), np.array([1.0, 1.0])) == pytest.approx(0.5)

    def test_zero_length_vectors(self):
        assert max_error(np.zeros(0), np.zeros(0)) == 0.0
        assert mean_error(np.zeros(0), np.zeros(0)) == 0.0


class TestTopKMetrics:
    def setup_method(self):
        self.reference = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.1])

    def test_top_k_nodes_order(self):
        assert top_k_nodes(self.reference, 3).tolist() == [0, 1, 2]

    def test_top_k_nodes_tie_break_by_id(self):
        scores = np.array([0.5, 0.5, 0.9])
        assert top_k_nodes(scores, 2).tolist() == [2, 0]

    def test_top_k_exclude(self):
        assert 0 not in top_k_nodes(self.reference, 3, exclude=0).tolist()

    def test_precision_perfect(self):
        assert precision_at_k(self.reference, self.reference, 4) == 1.0

    def test_precision_partial(self):
        estimate = np.array([0.9, 0.1, 0.7, 0.6, 0.8, 0.5])
        # top-2(estimate) = {0, 4}; top-2(reference) = {0, 1} -> overlap 1/2.
        assert precision_at_k(estimate, self.reference, 2) == 0.5

    def test_precision_k_larger_than_n(self):
        assert precision_at_k(self.reference, self.reference, 100) == 1.0

    def test_ndcg_perfect_and_worst(self):
        assert ndcg_at_k(self.reference, self.reference, 4) == pytest.approx(1.0)
        reversed_scores = self.reference[::-1].copy()
        assert ndcg_at_k(reversed_scores, self.reference, 4) < 1.0

    def test_ndcg_zero_reference(self):
        assert ndcg_at_k(np.zeros(4), np.zeros(4), 2) == 0.0

    def test_kendall_tau_identical(self):
        assert kendall_tau(self.reference, self.reference, 5) == 1.0

    def test_kendall_tau_reversed(self):
        assert kendall_tau(-self.reference, self.reference, 5) == -1.0

    def test_kendall_tau_single_node(self):
        assert kendall_tau(np.array([1.0]), np.array([1.0]), 1) == 1.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(self.reference, self.reference, 0)


class TestPooling:
    def test_pooled_ground_truth_ranks_by_oracle(self):
        oracle = lambda source, node: {1: 0.9, 2: 0.1, 3: 0.5}[node]
        evaluation = pooled_ground_truth(0, [[1, 2], [3, 2]], k=2, oracle=oracle)
        assert evaluation.pooled_nodes.tolist()[:2] == [1, 3]
        assert evaluation.pooled_top_k().k == 2

    def test_pool_removes_duplicates_and_source(self):
        oracle = lambda source, node: 1.0
        evaluation = pooled_ground_truth(7, [[7, 1, 2], [2, 3]], k=3, oracle=oracle)
        assert 7 not in evaluation.pooled_nodes.tolist()
        assert sorted(evaluation.pooled_nodes.tolist()) == [1, 2, 3]

    def test_empty_pool(self):
        evaluation = pooled_ground_truth(0, [[], []], k=3, oracle=lambda s, n: 1.0)
        assert evaluation.pooled_nodes.size == 0

    def test_pooled_precision_scores_algorithms(self):
        oracle = lambda source, node: {1: 0.9, 2: 0.8, 3: 0.2, 4: 0.1}[node]
        good = TopKResult(source=0, nodes=np.array([1, 2]), scores=np.array([0.9, 0.8]),
                          algorithm="good")
        bad = TopKResult(source=0, nodes=np.array([3, 4]), scores=np.array([0.7, 0.6]),
                         algorithm="bad")
        evaluation = pooled_precision(0, {"good": good, "bad": bad}, k=2, oracle=oracle)
        assert evaluation.precisions["good"] == 1.0
        assert evaluation.precisions["bad"] == 0.0

    def test_monte_carlo_oracle_consistency(self, collab_graph, collab_simrank):
        oracle = monte_carlo_oracle(collab_graph, decay=DECAY, num_pairs=4000, seed=1)
        estimate = oracle(3, 8)
        assert estimate == pytest.approx(collab_simrank[3, 8], abs=0.05)

    def test_pooling_end_to_end_with_real_algorithms(self, collab_graph, collab_simrank):
        """Pooling ranks the exact top-k provider at precision 1."""
        truth_nodes = np.argsort(-collab_simrank[5])
        truth_nodes = truth_nodes[truth_nodes != 5][:5]
        exact_result = TopKResult(source=5, nodes=truth_nodes,
                                  scores=collab_simrank[5][truth_nodes], algorithm="exact")
        noisy_nodes = np.array(truth_nodes.tolist()[:3] + [70, 80])
        noisy_result = TopKResult(source=5, nodes=noisy_nodes,
                                  scores=collab_simrank[5][noisy_nodes], algorithm="noisy")
        oracle = lambda source, node: float(collab_simrank[source, node])
        evaluation = pooled_precision(5, {"exact": exact_result, "noisy": noisy_result},
                                      k=5, oracle=oracle)
        assert evaluation.precisions["exact"] == 1.0
        assert evaluation.precisions["noisy"] <= evaluation.precisions["exact"]
