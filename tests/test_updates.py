"""Online-update suite: WAL durability, crash-consistent repair, staleness.

Four pillars, mirroring the dynamic-graph design:

* **wire + WAL** — edge batches round-trip their JSONL wire form, reject
  unknown fields and out-of-range endpoints, a torn tail replays as a clean
  prefix while interior corruption refuses to replay at all;
* **repaired == rebuilt** — for every persisted-index method and every
  batch shape (insert-only, delete-only, mixed; including self-loops and
  edges touching previously dangling nodes), the incrementally repaired
  index matches a from-scratch rebuild at the method's pinned tolerance,
  and the verify-or-rebuild oracle accepts the repair;
* **crash consistency** — a SIGKILL-equivalent exit injected inside the
  WAL append, the CSR apply, the index repair, or the version swap never
  loses an acknowledged update: replaying the WAL on restart always
  reaches at least the last acked version, bit-equal to applying the same
  batches to the base graph;
* **serving semantics** — the planner refuses a silently rebound graph,
  annotates stale answers with version/staleness bounds, the front end
  treats update lines as ordered barriers, and the pool replays its update
  history to respawned workers so every worker serves the same version.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.linearization import LinearizationSimRank
from repro.baselines.monte_carlo import MonteCarloSimRank
from repro.baselines.prsim import PRSim
from repro.baselines.sling import SLING
from repro.graph.context import GraphContext
from repro.graph.digraph import DiGraph
from repro.graph.updates import (
    EdgeBatch,
    UpdateLog,
    WalCorruptionError,
    apply_edge_batch,
)
from repro.service import (
    FaultPlan,
    FaultRule,
    Frontend,
    QueryPlanner,
    SinglePairQuery,
    SingleSourceQuery,
    WorkerPool,
)

MC_CONFIG = {"walks_per_node": 30, "walk_length": 5, "seed": 4}


def _base_graph() -> DiGraph:
    """Deterministic 60-node graph; nodes 56..59 start with no edges."""
    rng = np.random.default_rng(7)
    edges = np.unique(rng.integers(0, 56, size=(300, 2)), axis=0)
    edges = edges[edges[:, 0] != edges[:, 1]]
    return DiGraph.from_edges(edges, num_nodes=60, directed=True,
                              name="updates-base")


def _batches(graph: DiGraph):
    """Insert / delete / mixed wire batches with the awkward edge shapes."""
    existing = graph.edge_array()
    insert = [[3, 3],            # self-loop
              [56, 5], [5, 57],  # edges touching dangling nodes
              [10, 20], [21, 11]]
    delete = existing[[0, 7, 13]].tolist()
    return {
        "insert": {"type": "update", "insert": insert},
        "delete": {"type": "update", "delete": delete},
        "mixed": {"type": "update", "insert": insert, "delete": delete},
    }


@pytest.fixture(scope="module")
def graph():
    return _base_graph()


def wait_for_sync(predicate, timeout=15.0, interval=0.05):
    async def poll():
        for _ in range(int(timeout / interval)):
            if predicate():
                return True
            await asyncio.sleep(interval)
        return predicate()
    return poll


# --------------------------------------------------------------------------- #
# wire format + WAL framing
# --------------------------------------------------------------------------- #
class TestWireAndWal:
    def test_batch_round_trips_and_normalizes(self):
        batch = EdgeBatch.from_wire(
            {"type": "update", "insert": [[2, 1], [0, 1], [2, 1]],
             "delete": [[5, 4]]})
        wire = batch.to_wire()
        assert wire["insert"] == [[0, 1], [2, 1]]       # sorted, deduped
        assert EdgeBatch.from_wire(wire) == batch

    def test_unknown_fields_and_bad_endpoints_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            EdgeBatch.from_wire({"type": "update", "inserts": [[0, 1]]})
        with pytest.raises(ValueError, match="non-negative"):
            EdgeBatch.from_wire({"type": "update", "insert": [[-1, 2]]})
        batch = EdgeBatch.from_wire({"type": "update", "insert": [[0, 99]]})
        with pytest.raises(ValueError, match="num_nodes"):
            batch.validate(60)

    def test_torn_tail_replays_as_clean_prefix(self, tmp_path):
        path = tmp_path / "torn.wal"
        wal = UpdateLog(path)
        wal.append(EdgeBatch(inserts=[[0, 1]]), 1)
        wal.append(EdgeBatch(inserts=[[1, 2]]), 2)
        with open(path, "r+b") as handle:    # tear the last frame mid-write
            handle.truncate(path.stat().st_size - 3)
        assert UpdateLog(path).last_version() == 1

    def test_interior_corruption_refuses_to_replay(self, tmp_path):
        path = tmp_path / "flip.wal"
        wal = UpdateLog(path)
        wal.append(EdgeBatch(inserts=[[0, 1]]), 1)
        first = path.stat().st_size
        wal.append(EdgeBatch(inserts=[[1, 2]]), 2)
        blob = bytearray(path.read_bytes())
        blob[first // 2] ^= 0xFF             # inside the first frame
        path.write_bytes(bytes(blob))
        with pytest.raises(WalCorruptionError):
            UpdateLog(path).replay()


# --------------------------------------------------------------------------- #
# affected-set directions are pinned
# --------------------------------------------------------------------------- #
class TestAffectedDirections:
    def make_delta(self):
        g = DiGraph.from_edges([[0, 1], [1, 2], [2, 3], [5, 0]],
                               num_nodes=6, directed=True, name="path")
        context = GraphContext(g)
        return context.apply_updates({"type": "update", "insert": [[4, 1]]})

    def test_walk_direction_is_out_bfs_from_touched(self):
        delta = self.make_delta()
        assert delta.touched_nodes().tolist() == [1]
        assert delta.affected_nodes(0, direction="walk").tolist() == [1]
        assert delta.affected_nodes(1, direction="walk").tolist() == [1, 2]
        assert delta.affected_nodes(2, direction="walk").tolist() == [1, 2, 3]

    def test_landing_direction_is_in_bfs_from_touched(self):
        delta = self.make_delta()
        assert delta.affected_nodes(1, direction="landing").tolist() == \
            [0, 1, 4]
        assert delta.affected_nodes(2, direction="landing").tolist() == \
            [0, 1, 4, 5]

    def test_unknown_direction_rejected(self):
        delta = self.make_delta()
        with pytest.raises(ValueError, match="direction"):
            delta.affected_nodes(1, direction="sideways")


# --------------------------------------------------------------------------- #
# repaired index == rebuilt index, per method, per batch shape
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("kind", ["insert", "delete", "mixed"])
class TestRepairMatchesRebuild:
    def run_repair(self, graph, kind, build):
        context = GraphContext(graph)
        algorithm = build(graph, context).preprocess()
        delta = context.apply_updates(_batches(graph)[kind])
        report = algorithm.repair(delta)
        assert report["strategy"] == "repair", report
        assert report["verified"] is True
        rebuilt = build(context.graph, context).preprocess()
        return algorithm, rebuilt, delta

    def test_sling_hop_rows_match_rebuild(self, graph, kind):
        repaired, rebuilt, _ = self.run_repair(
            graph, kind,
            lambda g, c: SLING(g, epsilon=1e-2, seed=11, context=c))
        for level, (ours, theirs) in enumerate(
                zip(repaired._hop_matrices, rebuilt._hop_matrices)):
            diff = ours - theirs
            worst = float(np.abs(diff.data).max()) if diff.nnz else 0.0
            assert worst <= 1e-12, (level, worst)

    def test_prsim_hub_vectors_match_pinned_hub_rebuild(self, graph, kind):
        repaired, _, _ = self.run_repair(
            graph, kind,
            lambda g, c: PRSim(g, epsilon=1e-2, hub_fraction=0.2, seed=9,
                               context=c))
        # The repair keeps the original hub set pinned, so the oracle is a
        # rebuild of exactly those hubs on the new graph.
        threshold = ((1.0 - repaired._operator.sqrt_c) ** 2
                     * repaired.epsilon)
        full = repaired._build_hub_vectors(
            repaired._hubs, repaired.num_iterations(), threshold)
        for name, got, want in zip(("positions", "levels", "columns"),
                                   repaired._hub_flat[:3], full[:3]):
            assert np.array_equal(got, want), name
        gap = float(np.abs(repaired._hub_flat[3] - full[3]).max()) \
            if full[3].size else 0.0
        assert gap <= 1e-12

    def test_linearization_diagonal_within_sampling_noise(self, graph, kind):
        repaired, rebuilt, _ = self.run_repair(
            graph, kind,
            lambda g, c: LinearizationSimRank(g, epsilon=1e-2,
                                              samples_per_node=400, seed=5,
                                              context=c))
        gap = float(np.abs(repaired._diagonal - rebuilt._diagonal).max())
        assert gap < 6.0 * np.sqrt(0.5 / 400), gap

    def test_mc_preserves_untouched_walks(self, graph, kind):
        context = GraphContext(graph)
        algorithm = MonteCarloSimRank(graph, walks_per_node=50, walk_length=7,
                                      seed=3, context=context).preprocess()
        before = algorithm._index.copy()
        delta = context.apply_updates(_batches(graph)[kind])
        report = algorithm.repair(delta)
        assert report["strategy"] == "repair" and report["verified"] is True
        touched = delta.touched_nodes().astype(algorithm._index.dtype)
        stale = np.isin(before, touched).any(axis=0)
        assert np.array_equal(algorithm._index[:, ~stale], before[:, ~stale])


# --------------------------------------------------------------------------- #
# crash consistency: no acknowledged update is ever lost
# --------------------------------------------------------------------------- #
def _crash_batches():
    return [{"type": "update", "insert": [[0, 41], [41, 0]]},
            {"type": "update", "insert": [[7, 33]],
             "delete": [[0, 41]]}]


#: (crash site, 1-based ordinal of the matching call that exits, acks the
#: child must have printed before dying, exact version the WAL replays to).
CRASH_CASES = [
    ("wal_append", 2, [1], 1),   # before the append: update 2 never acked
    ("apply", 2, [1], 2),        # after the append: durable, at-least-once
    ("repair", 1, [1], 1),       # mid-repair: acked version already durable
    ("swap", 2, [1, 2], 2),      # mid-swap: both acked, both durable
]


def _child_main(argv):
    """Subprocess body for the crash tests: apply updates until the fault
    plan SIGKILLs the process (``os._exit(137)``) at the requested site."""
    site, ordinal, wal_path = argv[0], int(argv[1]), argv[2]
    graph = _base_graph()
    context = GraphContext(graph)
    plan = FaultPlan([FaultRule(method="update", route=site, action="exit",
                                calls=(ordinal,))])
    planner = QueryPlanner(context.graph, context=context,
                           default_method="mc",
                           method_configs={"mc": MC_CONFIG},
                           wal=UpdateLog(wal_path), fault_plan=plan)
    for batch in _crash_batches():
        ack = planner.apply_updates(batch)
        print("ACK", ack["graph_version"], flush=True)
        planner.complete_repairs()
    print("DONE", flush=True)
    return 0


@pytest.mark.parametrize("site,ordinal,acked,recovered", CRASH_CASES)
def test_kill_at_crash_point_loses_no_acked_update(tmp_path, site, ordinal,
                                                   acked, recovered):
    wal_path = tmp_path / f"{site}.wal"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, __file__, site, str(ordinal), str(wal_path)],
        capture_output=True, text=True, env=env, timeout=180)
    assert proc.returncode == 137, proc.stderr
    acks = [int(line.split()[1]) for line in proc.stdout.splitlines()
            if line.startswith("ACK")]
    assert acks == acked

    # Restart: WAL replay must reach every acked version, and the recovered
    # graph must be bit-equal to applying those batches to the base graph.
    context = GraphContext(_base_graph())
    context.recover(UpdateLog(wal_path))
    assert context.graph_version == recovered
    assert context.graph_version >= max(acks)
    expected = _base_graph()
    for wire in _crash_batches()[:recovered]:
        expected = apply_edge_batch(expected, EdgeBatch.from_wire(wire))
    assert np.array_equal(context.graph.fingerprint(), expected.fingerprint())


def test_clean_run_acks_every_update(tmp_path):
    wal_path = tmp_path / "clean.wal"
    context = GraphContext(_base_graph())
    planner = QueryPlanner(context.graph, context=context,
                           default_method="mc",
                           method_configs={"mc": MC_CONFIG},
                           wal=UpdateLog(wal_path))
    for batch in _crash_batches():
        planner.apply_updates(batch)
        planner.complete_repairs()
    assert planner.graph_version == 2
    restarted = GraphContext(_base_graph())
    # The planner compacts the WAL behind a checkpoint after each swap, so
    # a clean run leaves zero tail records to replay — recovery reaches
    # version 2 from the checkpoint alone.
    assert restarted.recover(UpdateLog(wal_path)) == 0
    assert restarted.graph_version == 2
    assert np.array_equal(restarted.graph.fingerprint(),
                          context.graph.fingerprint())


# --------------------------------------------------------------------------- #
# planner: binding hazard, staleness bounds, swap
# --------------------------------------------------------------------------- #
class TestPlannerUpdates:
    def make_planner(self, graph):
        context = GraphContext(graph)
        planner = QueryPlanner(context.graph, context=context,
                               default_method="mc",
                               method_configs={"mc": MC_CONFIG},
                               cache_entries=16)
        return planner, context

    def test_silently_rebound_graph_fails_loudly(self, graph):
        planner, _ = self.make_planner(graph)
        planner.graph = DiGraph.from_edges([[0, 1]], num_nodes=60,
                                           directed=True, name="impostor")
        with pytest.raises(RuntimeError, match="apply_updates"):
            list(planner.answer([SinglePairQuery(0, 1)]))

    def test_stale_window_is_bounded_and_annotated(self, graph):
        planner, context = self.make_planner(graph)
        context.apply_updates(_batches(graph)["mixed"])
        outcome = next(iter(planner.answer([SingleSourceQuery(0)])))
        assert outcome.result is not None
        assert outcome.result.stats["graph_version"] == 0.0
        assert outcome.result.stats["stale_updates"] == 1.0
        assert planner.stale_updates == 1

        report = planner.complete_repairs()
        assert report["graph_version"] == 1
        outcome = next(iter(planner.answer([SingleSourceQuery(0)])))
        assert outcome.result.stats["graph_version"] == 1.0
        assert outcome.result.stats["stale_updates"] == 0.0
        counters = planner.stats()
        assert counters["updates_applied"] == 0   # applied via context
        assert counters["version_swaps"] == 1
        assert counters["stale_answers"] >= 1

    def test_apply_then_swap_serves_new_graph(self, graph):
        planner, context = self.make_planner(graph)
        before = next(iter(planner.answer([SinglePairQuery(0, 41)])))
        ack = planner.apply_updates(
            {"type": "update", "insert": [[0, 41], [41, 0]]})
        assert ack == {"type": "update", "graph_version": 1, "inserted": 2,
                       "deleted": 0, "stale_updates": 1}
        planner.complete_repairs()
        assert planner.graph is context.graph
        after = next(iter(planner.answer([SinglePairQuery(0, 41)])))
        assert after.result.score > before.result.score


# --------------------------------------------------------------------------- #
# front end + pool: barriers, broadcast, respawn replay
# --------------------------------------------------------------------------- #
def make_factory(graph):
    def factory() -> QueryPlanner:
        return QueryPlanner(graph, default_method="mc",
                            method_configs={"mc": MC_CONFIG},
                            cache_entries=32)
    return factory


class TestServingUpdates:
    def test_frontend_treats_updates_as_ordered_barriers(self, graph):
        # Nodes 56/57 start dangling; the update gives them one shared
        # in-neighbour, so s(56, 57) becomes exactly c on the new graph —
        # every paired walk meets at node 3 — and was exactly 0 before.
        lines = [
            json.dumps({"type": "single_pair", "source": 56, "target": 57}),
            json.dumps({"type": "update", "insert": [[3, 56], [3, 57]]}),
            json.dumps({"type": "single_pair", "source": 56, "target": 57}),
            json.dumps({"type": "update", "insert": [[0, 999]]}),
        ]

        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=2,
                              batch_size=2)
            await pool.start()
            frontend = Frontend(pool, graph.num_nodes)
            written = []
            try:
                failures = await frontend.serve_lines(lines, written.append)
            finally:
                await pool.drain()
            return written, failures, frontend.stats()

        written, failures, stats = asyncio.run(scenario())
        assert [w.get("type", w.get("code")) for w in written] == \
            ["single_pair", "update", "single_pair", "invalid_query"]
        assert written[1]["ok"] is True
        assert written[1]["graph_version"] == 1
        # The query after the barrier is answered on the updated graph.
        assert written[2]["graph_version"] == 1
        assert written[2]["score"] > 0.0
        # The pre-barrier query may legally be answered at either version
        # (the barrier fences later lines; an already-queued query can be
        # overtaken by the broadcast) — but its version label must match
        # the graph it was actually computed on.
        assert written[0]["graph_version"] in (0, 1)
        if written[0]["graph_version"] == 0:
            assert written[0]["score"] == 0.0
        else:
            assert written[0]["score"] > 0.0
        assert stats["updates"] == 1 and failures == 1

    def test_pool_replays_updates_to_respawned_workers(self, graph):
        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=2,
                              batch_size=2)
            await pool.start()
            try:
                ack = await pool.apply_update(
                    {"type": "update", "insert": [[3, 56], [3, 57]]})
                assert ack["ok"] is True and ack["graph_version"] == 1
                assert ack["delivered"] == 2

                poll = wait_for_sync(
                    lambda: pool.stats()["worker_versions"] == [1, 1])
                assert await poll()

                os.kill(pool.pids()[0], signal.SIGKILL)
                assert await wait_for_sync(
                    lambda: pool.alive_count() == pool.num_workers)()
                assert await wait_for_sync(
                    lambda: pool.stats()["worker_versions"] == [1, 1])()

                payload = await pool.submit(SinglePairQuery(56, 57))
                stats = pool.stats()
                return payload, stats
            finally:
                await pool.drain()

        payload, stats = asyncio.run(scenario())
        assert payload["graph_version"] == 1
        assert payload["score"] > 0.0
        assert stats["updates"] == 1
        assert stats["update_replays"] >= 1
        assert stats["graph_version"] == 1


if __name__ == "__main__":
    sys.exit(_child_main(sys.argv[1:]))
