"""Tests for the baseline algorithms against PowerMethod ground truth."""

import numpy as np
import pytest

from repro.baselines.linearization import LinearizationSimRank
from repro.baselines.monte_carlo import MonteCarloSimRank
from repro.baselines.parsim import ParSim
from repro.baselines.power_method import PowerMethod, simrank_matrix
from repro.baselines.probesim import ProbeSim
from repro.baselines.prsim import PRSim
from repro.metrics.accuracy import max_error, precision_at_k

DECAY = 0.6


class TestPowerMethod:
    def test_diagonal_is_one(self, collab_simrank):
        assert np.allclose(np.diag(collab_simrank), 1.0)

    def test_values_in_unit_interval(self, collab_simrank):
        assert collab_simrank.min() >= 0.0
        assert collab_simrank.max() <= 1.0 + 1e-12

    def test_symmetry(self, collab_simrank):
        assert np.allclose(collab_simrank, collab_simrank.T, atol=1e-10)

    def test_simrank_definition_holds(self, toy_graph, toy_simrank):
        """Verify eq. (1) directly on the toy graph for a non-trivial pair."""
        c = DECAY
        # S(3, 5): I(3) = {2}, I(5) = {1}; definition gives c·S(2, 1)/1.
        expected = c * toy_simrank[2, 1]
        assert toy_simrank[3, 5] == pytest.approx(expected, abs=1e-9)

    def test_more_iterations_tighten_error(self, toy_graph):
        coarse = simrank_matrix(toy_graph, decay=DECAY, max_iterations=3)
        fine = simrank_matrix(toy_graph, decay=DECAY, max_iterations=60)
        # The iteration is monotone non-decreasing towards the fixed point.
        assert np.all(fine - coarse >= -1e-12)

    def test_single_source_and_pair_interfaces(self, collab_graph, collab_simrank):
        oracle = PowerMethod(collab_graph, decay=DECAY).preprocess()
        result = oracle.single_source(4)
        assert np.allclose(result.scores, collab_simrank[4])
        assert oracle.pair(4, 7) == pytest.approx(collab_simrank[4, 7])
        assert oracle.index_bytes() == collab_simrank.nbytes
        assert oracle.preprocessing_seconds > 0.0

    def test_lazy_preprocess_on_matrix_access(self, toy_graph):
        oracle = PowerMethod(toy_graph, decay=DECAY)
        assert not oracle.prepared
        _ = oracle.matrix
        assert oracle._matrix is not None

    def test_empty_graph(self):
        from repro.graph.digraph import DiGraph
        assert simrank_matrix(DiGraph.empty(0)).shape == (0, 0)


class TestMonteCarlo:
    def test_accuracy_improves_with_more_walks(self, collab_graph, collab_simrank):
        source = 5
        errors = []
        for walks in (20, 200):
            algorithm = MonteCarloSimRank(collab_graph, decay=DECAY, walks_per_node=walks,
                                          walk_length=10, seed=3)
            result = algorithm.single_source(source)
            errors.append(max_error(result.scores, collab_simrank[source]))
        assert errors[1] <= errors[0]

    def test_reasonable_error_with_many_walks(self, collab_graph, collab_simrank):
        algorithm = MonteCarloSimRank(collab_graph, decay=DECAY, walks_per_node=400,
                                      walk_length=12, seed=7)
        result = algorithm.single_source(9)
        assert max_error(result.scores, collab_simrank[9]) < 0.12

    def test_source_score_is_one(self, collab_graph):
        algorithm = MonteCarloSimRank(collab_graph, decay=DECAY, walks_per_node=10, seed=1)
        assert algorithm.single_source(3).scores[3] == 1.0

    def test_index_accounting(self, collab_graph):
        algorithm = MonteCarloSimRank(collab_graph, decay=DECAY, walks_per_node=10,
                                      walk_length=5, seed=1)
        assert algorithm.index_bytes() == 0
        algorithm.preprocess()
        expected = (5 + 1) * 10 * collab_graph.num_nodes * 4
        assert algorithm.index_bytes() == expected
        assert algorithm.preprocessing_seconds > 0.0

    def test_index_based_flag(self, collab_graph):
        assert MonteCarloSimRank(collab_graph).index_based
        assert "index-based" in MonteCarloSimRank(collab_graph).describe()


class TestLinearization:
    def test_accuracy_with_generous_samples(self, collab_graph, collab_simrank):
        algorithm = LinearizationSimRank(collab_graph, decay=DECAY, epsilon=1e-3,
                                         samples_per_node=3000, seed=5)
        result = algorithm.single_source(8)
        assert max_error(result.scores, collab_simrank[8]) < 0.03

    def test_accuracy_improves_with_samples(self, collab_graph, collab_simrank):
        source = 2
        errors = []
        for samples in (5, 2000):
            algorithm = LinearizationSimRank(collab_graph, decay=DECAY, epsilon=1e-3,
                                             samples_per_node=samples, seed=11)
            errors.append(max_error(algorithm.single_source(source).scores,
                                    collab_simrank[source]))
        assert errors[1] <= errors[0]

    def test_default_samples_derived_from_epsilon(self, collab_graph):
        algorithm = LinearizationSimRank(collab_graph, epsilon=1e-1, seed=1)
        assert algorithm.samples_per_node >= 1
        assert algorithm.samples_per_node <= 20_000

    def test_index_is_diagonal_vector(self, collab_graph):
        algorithm = LinearizationSimRank(collab_graph, samples_per_node=10, seed=1)
        algorithm.preprocess()
        assert algorithm.index_bytes() == collab_graph.num_nodes * 8


class TestParSim:
    def test_high_precision_despite_biased_diagonal(self, collab_graph, collab_simrank):
        """The paper's observation: ParSim's top-k precision is high on small graphs."""
        algorithm = ParSim(collab_graph, decay=DECAY, iterations=25)
        result = algorithm.single_source(6)
        assert precision_at_k(result.scores, collab_simrank[6], 10, exclude=6) >= 0.8

    def test_error_plateau_above_exactsim(self, collab_graph, collab_simrank):
        """ParSim cannot reach small MaxError because D=(1−c)I is biased."""
        algorithm = ParSim(collab_graph, decay=DECAY, iterations=40)
        result = algorithm.single_source(6)
        error = max_error(result.scores, collab_simrank[6], exclude=6)
        assert error > 1e-3          # plateau well above ExactSim's achievable error

    def test_more_iterations_do_not_increase_truncation_error(
            self, collab_graph, collab_simrank):
        short = ParSim(collab_graph, decay=DECAY, iterations=2).single_source(1)
        long = ParSim(collab_graph, decay=DECAY, iterations=30).single_source(1)
        assert max_error(long.scores, collab_simrank[1]) <= \
            max_error(short.scores, collab_simrank[1]) + 1e-6

    def test_index_free(self, collab_graph):
        algorithm = ParSim(collab_graph, iterations=3)
        assert not algorithm.index_based
        assert algorithm.index_bytes() == 0

    def test_source_score_one(self, collab_graph):
        assert ParSim(collab_graph, iterations=5).single_source(0).scores[0] == 1.0


class TestPRSim:
    def test_accuracy(self, collab_graph, collab_simrank):
        algorithm = PRSim(collab_graph, decay=DECAY, epsilon=1e-2, hub_fraction=0.2, seed=3)
        result = algorithm.single_source(10)
        assert max_error(result.scores, collab_simrank[10], exclude=10) < 0.08

    def test_error_shrinks_with_epsilon(self, collab_graph, collab_simrank):
        source = 4
        coarse = PRSim(collab_graph, decay=DECAY, epsilon=1e-1, hub_fraction=0.1, seed=9)
        fine = PRSim(collab_graph, decay=DECAY, epsilon=1e-2, hub_fraction=0.1, seed=9)
        coarse_error = max_error(coarse.single_source(source).scores, collab_simrank[source],
                                 exclude=source)
        fine_error = max_error(fine.single_source(source).scores, collab_simrank[source],
                               exclude=source)
        assert fine_error <= coarse_error + 0.01

    def test_index_grows_with_hub_fraction(self, collab_graph):
        small = PRSim(collab_graph, epsilon=1e-1, hub_fraction=0.05, seed=1).preprocess()
        large = PRSim(collab_graph, epsilon=1e-1, hub_fraction=0.3, seed=1).preprocess()
        assert large.index_bytes() > small.index_bytes()

    def test_preprocessing_recorded(self, collab_graph):
        algorithm = PRSim(collab_graph, epsilon=1e-1, seed=1).preprocess()
        assert algorithm.preprocessing_seconds > 0.0
        assert algorithm.prepared


class TestProbeSim:
    def test_accuracy_with_many_walks(self, collab_graph, collab_simrank):
        algorithm = ProbeSim(collab_graph, decay=DECAY, num_walks=800,
                             probe_threshold=1e-5, seed=3)
        result = algorithm.single_source(12)
        assert max_error(result.scores, collab_simrank[12], exclude=12) < 0.12

    def test_error_shrinks_with_walks(self, collab_graph, collab_simrank):
        source = 3
        coarse = ProbeSim(collab_graph, decay=DECAY, num_walks=30, seed=5)
        fine = ProbeSim(collab_graph, decay=DECAY, num_walks=1000, seed=5)
        coarse_error = max_error(coarse.single_source(source).scores,
                                 collab_simrank[source], exclude=source)
        fine_error = max_error(fine.single_source(source).scores,
                               collab_simrank[source], exclude=source)
        assert fine_error <= coarse_error + 0.02

    def test_index_free_and_top_k(self, collab_graph, collab_simrank):
        algorithm = ProbeSim(collab_graph, decay=DECAY, num_walks=500, seed=7)
        assert not algorithm.index_based
        top = algorithm.top_k(2, k=10)
        truth_top = set(np.argsort(-collab_simrank[2])[1:11].tolist())
        overlap = len(set(int(v) for v in top.nodes) & truth_top)
        assert overlap >= 5


class TestProbeSimBatchedProbes:
    """The batched probe accumulation must match sequential per-node probes."""

    def test_batched_probe_accumulation_matches_sequential(self, collab_graph):
        algorithm = ProbeSim(collab_graph, decay=DECAY, num_walks=50,
                             probe_threshold=1e-4, seed=11)
        num_nodes = collab_graph.num_nodes
        rng = np.random.default_rng(4)
        counts = np.zeros(num_nodes, dtype=np.int64)
        counts[rng.choice(num_nodes, size=25, replace=False)] = \
            rng.integers(1, 5, size=25)
        meeting_nodes = np.flatnonzero(counts)
        scale = 1.0 / ((1.0 - algorithm._operator.sqrt_c) * algorithm.num_walks)
        for level in (0, 1, 3):
            batched = np.zeros(num_nodes, dtype=np.float64)
            algorithm._accumulate_probe_batch(batched, meeting_nodes, level,
                                              counts[meeting_nodes], scale)
            sequential = np.zeros(num_nodes, dtype=np.float64)
            for node in meeting_nodes:
                probe = algorithm._probe(int(node), level)
                probe.add_into(sequential, scale * counts[node] *
                               algorithm._diagonal[node])
            assert np.allclose(batched, sequential, atol=1e-12), \
                f"probe batch diverged at level {level}"

    def test_batched_probe_empty_meeting_set(self, collab_graph):
        algorithm = ProbeSim(collab_graph, decay=DECAY, num_walks=10, seed=1)
        scores = np.zeros(collab_graph.num_nodes)
        algorithm._accumulate_probe_batch(scores, np.empty(0, dtype=np.int64), 2,
                                          np.empty(0, dtype=np.int64), 1.0)
        assert not scores.any()
