"""Unit tests for edge-list and npz graph IO."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import power_law_graph
from repro.graph.io import load_npz, read_edge_list, save_npz, write_edge_list


class TestEdgeList:
    def test_round_trip(self, tmp_path, toy_graph):
        path = tmp_path / "toy.txt"
        write_edge_list(toy_graph, path)
        loaded = read_edge_list(path)
        assert loaded == toy_graph

    def test_header_comment_skipped(self, tmp_path):
        path = tmp_path / "with_header.txt"
        path.write_text("# SNAP-style header\n# nodes: 3\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_sparse_ids_are_remapped(self, tmp_path):
        path = tmp_path / "sparse_ids.txt"
        path.write_text("10 20\n20 30\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_dense_ids_preserved(self, tmp_path):
        path = tmp_path / "dense_ids.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        graph = read_edge_list(path)
        assert graph.has_edge(2, 0)

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "csv_edges.txt"
        path.write_text("0,1\n1,2\n")
        graph = read_edge_list(path, delimiter=",")
        assert graph.num_edges == 2

    def test_undirected_flag(self, tmp_path):
        path = tmp_path / "undirected.txt"
        path.write_text("0 1\n")
        graph = read_edge_list(path, directed=False)
        assert graph.has_edge(1, 0)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError, match="malformed"):
            read_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only a comment\n")
        graph = read_edge_list(path)
        assert graph.num_nodes == 0

    def test_write_without_header(self, tmp_path, toy_graph):
        path = tmp_path / "no_header.txt"
        write_edge_list(toy_graph, path, header=False)
        first_line = path.read_text().splitlines()[0]
        assert not first_line.startswith("#")


class TestNpz:
    def test_round_trip(self, tmp_path, toy_graph):
        path = tmp_path / "toy.npz"
        save_npz(toy_graph, path)
        loaded = load_npz(path)
        assert loaded == toy_graph
        assert loaded.name == toy_graph.name
        assert loaded.directed == toy_graph.directed

    def test_round_trip_larger_graph(self, tmp_path):
        graph = power_law_graph(200, 4.0, seed=3)
        path = tmp_path / "pl.npz"
        save_npz(graph, path)
        assert load_npz(path) == graph

    def test_round_trip_preserves_degrees(self, tmp_path, collab_graph):
        path = tmp_path / "collab.npz"
        save_npz(collab_graph, path)
        loaded = load_npz(path)
        assert np.array_equal(loaded.in_degrees, collab_graph.in_degrees)
