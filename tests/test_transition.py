"""Unit tests for the (reverse) transition matrix and its operators."""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.transition import TransitionOperator, reverse_transition_matrix


class TestReverseTransitionMatrix:
    def test_column_sums_are_one_for_non_dangling(self, toy_graph):
        matrix = reverse_transition_matrix(toy_graph)
        column_sums = np.asarray(matrix.sum(axis=0)).ravel()
        in_degrees = toy_graph.in_degrees
        for node in range(toy_graph.num_nodes):
            expected = 1.0 if in_degrees[node] > 0 else 0.0
            assert column_sums[node] == pytest.approx(expected)

    def test_entries_are_inverse_in_degree(self, toy_graph):
        matrix = reverse_transition_matrix(toy_graph).toarray()
        # Node 2 has in-neighbours {0, 1, 4}, each with probability 1/3.
        for neighbor in (0, 1, 4):
            assert matrix[neighbor, 2] == pytest.approx(1.0 / 3.0)
        assert matrix[3, 2] == 0.0

    def test_shape_and_sparsity(self, collab_graph):
        matrix = reverse_transition_matrix(collab_graph)
        assert matrix.shape == (collab_graph.num_nodes, collab_graph.num_nodes)
        assert matrix.nnz == collab_graph.num_edges

    def test_dangling_column_is_zero(self, toy_graph):
        matrix = reverse_transition_matrix(toy_graph).toarray()
        assert np.all(matrix[:, 0] == 0.0)


class TestTransitionOperator:
    def test_sqrt_c(self, toy_graph):
        operator = TransitionOperator(toy_graph, 0.64)
        assert operator.sqrt_c == pytest.approx(0.8)

    def test_invalid_decay_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            TransitionOperator(toy_graph, 1.5)
        with pytest.raises(ValueError):
            TransitionOperator(toy_graph, 0.0)

    def test_step_backward_matches_matrix(self, toy_graph):
        operator = TransitionOperator(toy_graph, 0.6)
        vector = np.arange(toy_graph.num_nodes, dtype=np.float64)
        expected = operator.matrix @ vector
        assert np.allclose(operator.step_backward(vector), expected)

    def test_step_forward_is_transpose(self, toy_graph):
        operator = TransitionOperator(toy_graph, 0.6)
        vector = np.ones(toy_graph.num_nodes)
        assert np.allclose(operator.step_forward(vector),
                           operator.matrix.T @ vector)

    def test_decayed_operators_scale_by_sqrt_c(self, toy_graph):
        operator = TransitionOperator(toy_graph, 0.6)
        vector = np.random.default_rng(0).random(toy_graph.num_nodes)
        assert np.allclose(operator.decayed_backward(vector),
                           operator.sqrt_c * operator.step_backward(vector))
        assert np.allclose(operator.decayed_forward(vector),
                           operator.sqrt_c * operator.step_forward(vector))

    def test_matrices_cached(self, toy_graph):
        operator = TransitionOperator(toy_graph, 0.6)
        assert operator.matrix is operator.matrix
        assert operator.matrix_t is operator.matrix_t

    def test_memory_bytes(self, toy_graph):
        operator = TransitionOperator(toy_graph, 0.6)
        assert operator.memory_bytes() == 0      # nothing built yet
        operator.matrix
        assert operator.memory_bytes() > 0

    def test_probability_preserved_backward(self, collab_graph):
        # On a graph without dangling nodes, P preserves total mass.
        operator = TransitionOperator(collab_graph, 0.6)
        assert collab_graph.dangling_nodes().size == 0
        vector = np.zeros(collab_graph.num_nodes)
        vector[3] = 1.0
        stepped = operator.step_backward(vector)
        assert stepped.sum() == pytest.approx(1.0)
