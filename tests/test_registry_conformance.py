"""Registry-parametrized conformance suite for the SimRankAlgorithm contract.

Every algorithm registered in :mod:`repro.algorithms.registry` must satisfy
the same interface contract:

* constructible by name from a plain config dict, sharing a
  :class:`GraphContext`;
* ``preprocess`` is idempotent (a second call neither rebuilds the index nor
  perturbs the RNG stream);
* ``single_source_batch`` matches a sequential loop of ``single_source``
  instances constructed with the same seed (bit-identical for methods using
  the default loop; within the method's error bound for ExactSim's
  vectorized batch path);
* ``index_bytes`` is non-negative, positive after preprocessing iff the
  method is index-based;
* for persistable methods, a save/load round trip reproduces bit-identical
  query results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import registry
from repro.baselines.base import IndexPersistenceError, SimRankAlgorithm
from repro.core.result import SingleSourceResult
from repro.graph.context import GraphContext

QUERY_NODES = [1, 5, 9, 23]

#: Small/fast configs per method so the whole suite runs in seconds.
CONFIGS = {
    "exactsim": {"epsilon": 5e-2, "seed": 7, "max_total_samples": 20_000},
    "exactsim-basic": {"epsilon": 5e-2, "seed": 7, "max_total_samples": 20_000},
    "power-method": {},
    "mc": {"walks_per_node": 20, "walk_length": 6, "seed": 7},
    "linearization": {"samples_per_node": 30, "seed": 7},
    "parsim": {"iterations": 8},
    "prsim": {"epsilon": 1e-1, "seed": 7},
    "probesim": {"num_walks": 100, "seed": 7},
    "sling": {"epsilon": 1e-1, "seed": 7},
}

#: Max |batch − looped| per entry.  0.0 ⇒ bit-identical.  On graphs up to
#: ``ExactSim._DENSE_BATCH_MAX_NODES`` (the conformance graph qualifies) the
#: vectorized ExactSim batch runs the dense matmul phase 1 whose columns are
#: bit-identical to the sequential recursion, but phase 2 samples the whole
#: batch through one count-aggregated engine call whose RNG schedule differs
#: from the per-source loop, so the batch agrees with the loop only within
#: the ε accuracy guarantee (2ε: both sides are ε-accurate).  The push-kernel
#: path above the dense-batch size is tolerance-tested in
#: tests/test_exactsim.py.
BATCH_TOLERANCE = {"exactsim": 1e-1, "exactsim-basic": 1e-1}

ALL_METHODS = sorted(CONFIGS)


def _make(name: str, graph, *, context=None) -> SimRankAlgorithm:
    return registry.create(name, graph, CONFIGS[name], context=context)


def test_registry_covers_all_config_entries():
    assert set(registry.available()) == set(CONFIGS)


def test_unknown_method_rejected(collab_graph):
    with pytest.raises(KeyError, match="unknown algorithm"):
        registry.create("no-such-method", collab_graph)


def test_unknown_config_key_rejected(collab_graph):
    with pytest.raises(ValueError, match="does not accept config keys"):
        registry.create("parsim", collab_graph, {"walks_per_node": 10})


@pytest.mark.parametrize("name", ALL_METHODS)
class TestConformance:
    def test_constructible_and_typed(self, name, collab_graph):
        context = GraphContext.shared(collab_graph)
        algorithm = _make(name, collab_graph, context=context)
        assert isinstance(algorithm, SimRankAlgorithm)
        assert algorithm.context is context
        assert algorithm.index_bytes() >= 0
        assert name in algorithm.describe() or algorithm.name in algorithm.describe()

    def test_single_source_contract(self, name, collab_graph):
        algorithm = _make(name, collab_graph)
        result = algorithm.single_source(QUERY_NODES[0])
        assert isinstance(result, SingleSourceResult)
        assert result.scores.shape == (collab_graph.num_nodes,)
        assert np.all(result.scores >= 0.0) and np.all(result.scores <= 1.0 + 1e-9)
        assert result.source == QUERY_NODES[0]

    def test_preprocess_idempotent(self, name, collab_graph):
        algorithm = _make(name, collab_graph)
        assert algorithm.preprocess() is algorithm
        bytes_first = algorithm.index_bytes()
        seconds_first = algorithm.preprocessing_seconds
        # A second call must be a no-op: same index, no RNG perturbation.
        assert algorithm.preprocess() is algorithm
        assert algorithm.index_bytes() == bytes_first
        assert algorithm.preprocessing_seconds == seconds_first
        assert algorithm.prepared

    def test_index_bytes_reflect_kind(self, name, collab_graph):
        algorithm = _make(name, collab_graph).preprocess()
        if algorithm.index_based:
            assert algorithm.index_bytes() > 0
        else:
            assert algorithm.index_bytes() == 0

    def test_batch_matches_looped_per_seed(self, name, collab_graph):
        looped_algorithm = _make(name, collab_graph)
        batched_algorithm = _make(name, collab_graph)
        looped = [looped_algorithm.single_source(s) for s in QUERY_NODES]
        batched = batched_algorithm.single_source_batch(QUERY_NODES)
        assert [r.source for r in batched] == QUERY_NODES
        tolerance = BATCH_TOLERANCE.get(name, 0.0)
        for sequential, batch in zip(looped, batched):
            difference = np.max(np.abs(sequential.scores - batch.scores))
            if tolerance == 0.0:
                assert np.array_equal(sequential.scores, batch.scores), \
                    f"{name}: batch diverged from sequential loop by {difference}"
            else:
                assert difference <= tolerance, \
                    f"{name}: batch differs from loop by {difference} > {tolerance}"

    def test_empty_batch(self, name, collab_graph):
        assert _make(name, collab_graph).single_source_batch([]) == []

    def test_save_load_roundtrip(self, name, collab_graph, tmp_path):
        spec = registry.get_spec(name)
        algorithm = _make(name, collab_graph)
        if not spec.supports_persistence:
            with pytest.raises(IndexPersistenceError):
                algorithm.preprocess().save_index(tmp_path / "index.npz")
            return
        algorithm.preprocess()
        before = algorithm.single_source(QUERY_NODES[1])
        path = algorithm.save_index(tmp_path / f"{name}.npz")
        restored = _make(name, collab_graph)
        restored.load_index(path)
        assert restored.prepared
        assert restored.index_bytes() == algorithm.index_bytes()
        assert restored.preprocessing_seconds == algorithm.preprocessing_seconds
        after = restored.single_source(QUERY_NODES[1])
        assert np.array_equal(before.scores, after.scores), \
            f"{name}: save/load round trip changed query results"

    def test_load_rejects_other_methods_index(self, name, collab_graph, tmp_path):
        spec = registry.get_spec(name)
        if not spec.supports_persistence:
            pytest.skip("method does not persist an index")
        path = _make(name, collab_graph).preprocess().save_index(tmp_path / "a.npz")
        other_name = next(other for other in ALL_METHODS
                          if other != name
                          and registry.get_spec(other).supports_persistence)
        other = _make(other_name, collab_graph)
        with pytest.raises(IndexPersistenceError, match="built by"):
            other.load_index(path)


def test_load_rejects_different_graph(collab_graph, directed_graph, tmp_path):
    path = _make("mc", collab_graph).preprocess().save_index(tmp_path / "mc.npz")
    stranger = registry.create("mc", directed_graph, CONFIGS["mc"])
    with pytest.raises(IndexPersistenceError, match="different graph"):
        stranger.load_index(path)


def test_save_index_normalizes_missing_npz_suffix(collab_graph, tmp_path):
    algorithm = _make("mc", collab_graph).preprocess()
    written = algorithm.save_index(tmp_path / "myindex")
    assert written.name == "myindex.npz" and written.exists()
    restored = _make("mc", collab_graph).load_index(written)
    assert restored.prepared
