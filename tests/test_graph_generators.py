"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    bipartite_graph,
    complete_graph,
    erdos_renyi_graph,
    power_law_graph,
    preferential_attachment_graph,
    random_dag,
    ring_graph,
    star_graph,
    two_community_graph,
)


class TestErdosRenyi:
    def test_size_and_determinism(self):
        first = erdos_renyi_graph(80, 0.05, seed=1)
        second = erdos_renyi_graph(80, 0.05, seed=1)
        assert first.num_nodes == 80
        assert first == second

    def test_edge_count_close_to_expectation(self):
        graph = erdos_renyi_graph(200, 0.05, seed=3)
        expected = 200 * 199 * 0.05
        assert 0.5 * expected < graph.num_edges < 1.6 * expected

    def test_zero_probability_gives_empty_graph(self):
        graph = erdos_renyi_graph(30, 0.0, seed=1)
        assert graph.num_edges == 0

    def test_probability_one_gives_complete_graph(self):
        graph = erdos_renyi_graph(10, 1.0, seed=1)
        assert graph.num_edges == 10 * 9

    def test_undirected_variant_symmetric(self):
        graph = erdos_renyi_graph(40, 0.1, directed=False, seed=5)
        for source, target in list(graph.edges())[:50]:
            assert graph.has_edge(target, source)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_no_self_loops(self):
        graph = erdos_renyi_graph(50, 0.2, seed=2)
        assert all(source != target for source, target in graph.edges())


class TestPreferentialAttachment:
    def test_size(self):
        graph = preferential_attachment_graph(100, 3, seed=1)
        assert graph.num_nodes == 100
        assert graph.num_edges >= 3 * (100 - 4)

    def test_determinism(self):
        assert (preferential_attachment_graph(60, 2, seed=9)
                == preferential_attachment_graph(60, 2, seed=9))

    def test_heavy_tail_in_degree(self):
        graph = preferential_attachment_graph(400, 3, seed=7)
        degrees = graph.in_degrees
        # A scale-free graph has a hub far above the average degree.
        assert degrees.max() > 5 * degrees.mean()

    def test_undirected_symmetry(self):
        graph = preferential_attachment_graph(50, 2, directed=False, seed=3)
        for source, target in list(graph.edges())[:40]:
            assert graph.has_edge(target, source)

    def test_edges_per_node_must_be_smaller_than_n(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(5, 5)


class TestPowerLaw:
    def test_size_and_average_degree(self):
        graph = power_law_graph(300, 6.0, seed=11)
        assert graph.num_nodes == 300
        average = graph.num_edges / graph.num_nodes
        assert 4.0 < average < 7.0

    def test_determinism(self):
        assert power_law_graph(100, 4.0, seed=2) == power_law_graph(100, 4.0, seed=2)

    def test_heavy_tail(self):
        graph = power_law_graph(500, 8.0, exponent=2.0, seed=21)
        degrees = graph.in_degrees
        assert degrees.max() > 4 * degrees.mean()

    def test_no_self_loops(self):
        graph = power_law_graph(100, 4.0, seed=5)
        assert all(source != target for source, target in graph.edges())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            power_law_graph(100, -1.0)
        with pytest.raises(ValueError):
            power_law_graph(100, 4.0, exponent=0.5)


class TestStructuredGenerators:
    def test_ring(self):
        graph = ring_graph(6)
        assert graph.num_edges == 6
        assert graph.has_edge(5, 0)
        assert all(graph.in_degree(v) == 1 for v in range(6))

    def test_ring_requires_two_nodes(self):
        with pytest.raises(ValueError):
            ring_graph(1)

    def test_star_inward(self):
        graph = star_graph(7, inward=True)
        assert graph.in_degree(0) == 6
        assert all(graph.in_degree(v) == 0 for v in range(1, 7))

    def test_star_outward(self):
        graph = star_graph(7, inward=False)
        assert graph.out_degree(0) == 6
        assert all(graph.in_degree(v) == 1 for v in range(1, 7))

    def test_complete(self):
        graph = complete_graph(5)
        assert graph.num_edges == 20
        assert all(graph.in_degree(v) == 4 for v in range(5))

    def test_bipartite_directions(self):
        graph = bipartite_graph(5, 4, 0.5, seed=1)
        assert graph.num_nodes == 9
        for source, target in graph.edges():
            assert source < 5 <= target

    def test_random_dag_is_acyclic_by_construction(self):
        graph = random_dag(30, 0.2, seed=4)
        assert all(source < target for source, target in graph.edges())

    def test_two_community_structure(self):
        graph = two_community_graph(30, p_in=0.3, p_out=0.01, seed=6)
        assert graph.num_nodes == 60
        labels = np.repeat([0, 1], 30)
        within = sum(1 for s, t in graph.edges() if labels[s] == labels[t])
        across = graph.num_edges - within
        assert within > across
