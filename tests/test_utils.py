"""Unit tests for the utility helpers."""

import logging
import time

import numpy as np
import pytest
from scipy import sparse

from repro.utils.logging import configure_logging, get_logger
from repro.utils.memory import MemoryTracker, format_bytes, nbytes_of
from repro.utils.rng import ensure_rng, random_seed_from, spawn_rngs
from repro.utils.timing import Timer, record_time, timed
from repro.utils.validation import (
    check_node_index,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
    check_vector_length,
)


class TestRng:
    def test_ensure_rng_from_int_is_deterministic(self):
        assert ensure_rng(7).integers(0, 100) == ensure_rng(7).integers(0, 100)

    def test_ensure_rng_passthrough(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_ensure_rng_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_ensure_rng_from_seed_sequence(self):
        assert isinstance(ensure_rng(np.random.SeedSequence(5)), np.random.Generator)

    def test_ensure_rng_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]

    def test_spawn_rngs_independent_and_reproducible(self):
        first = [rng.integers(0, 1000) for rng in spawn_rngs(3, 4)]
        second = [rng.integers(0, 1000) for rng in spawn_rngs(3, 4)]
        assert first == second
        assert len(set(first)) > 1

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)

    def test_random_seed_from(self):
        seed = random_seed_from(np.random.default_rng(3))
        assert isinstance(seed, int) and seed >= 0


class TestTiming:
    def test_timer_context_manager(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert len(timer.laps) == 1
        assert timer.last_lap == timer.laps[-1]

    def test_timer_accumulates(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert len(timer.laps) == 3
        assert timer.elapsed == pytest.approx(sum(timer.laps))

    def test_timer_misuse(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            timer.stop()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_timer_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0 and not timer.laps and not timer.running

    def test_last_lap_requires_laps(self):
        with pytest.raises(ValueError):
            Timer().last_lap

    def test_timed(self):
        result, seconds = timed(sum, range(100))
        assert result == 4950
        assert seconds >= 0.0

    def test_record_time(self):
        store = {}
        with record_time(store, "block"):
            pass
        assert store["block"] >= 0.0


class TestMemory:
    def test_nbytes_of_arrays(self):
        array = np.zeros(10, dtype=np.float64)
        assert nbytes_of(array) == 80

    def test_nbytes_of_sparse(self):
        matrix = sparse.csr_matrix(np.eye(4))
        expected = matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
        assert nbytes_of(matrix) == expected

    def test_nbytes_of_containers(self):
        payload = {"a": np.zeros(2), "b": [np.zeros(3), None]}
        assert nbytes_of(payload) == 16 + 24

    def test_nbytes_of_none_and_scalars(self):
        assert nbytes_of(None) == 0
        assert nbytes_of(42) == 0
        assert nbytes_of(b"abcd") == 4

    def test_nbytes_of_memory_bytes_protocol(self, toy_graph):
        assert nbytes_of(toy_graph) == toy_graph.memory_bytes()

    def test_format_bytes(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(1536) == "1.50 KiB"
        assert "MiB" in format_bytes(5 * 1024 * 1024)

    def test_memory_tracker(self):
        tracker = MemoryTracker()
        tracker.add("scores", np.zeros(10))
        tracker.add_bytes("index", 100)
        assert tracker.total_bytes == 180
        assert "total" in tracker.summary()


class TestValidation:
    def test_check_probability_bounds(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(0.0, "p", inclusive_low=False)
        with pytest.raises(ValueError):
            check_probability(1.0, "p", inclusive_high=False)

    def test_check_positive_and_non_negative(self):
        assert check_positive(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1.0, "x")

    def test_check_node_index(self):
        assert check_node_index(3, 5) == 3
        with pytest.raises(ValueError):
            check_node_index(5, 5)
        with pytest.raises(TypeError):
            check_node_index(1.5, 5)  # type: ignore[arg-type]

    def test_check_vector_length(self):
        vector = check_vector_length(np.zeros(4), 4)
        assert vector.shape == (4,)
        with pytest.raises(ValueError):
            check_vector_length(np.zeros((2, 2)), 4)
        with pytest.raises(ValueError):
            check_vector_length(np.zeros(3), 4)

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(1.5, "n")  # type: ignore[arg-type]


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("exactsim").name == "repro.exactsim"
        assert get_logger("repro.core").name == "repro.core"

    def test_configure_logging_idempotent(self):
        first = configure_logging(level=logging.WARNING)
        count = len(first.handlers)
        second = configure_logging(level=logging.WARNING)
        assert len(second.handlers) == count
