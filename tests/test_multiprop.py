"""Equivalence suite: level-synchronous multi-propagation vs sequential paths.

The :class:`MultiPropagation` engine interleaves B independent propagations
over shared levels; everything built on it must match the sequential
schedule it replaced:

* lane-for-lane the engine reproduces :func:`propagate_distribution` /
  :func:`propagate_transpose` *bit for bit*, including the per-lane edge
  accounting, dormant (``active``-masked) lanes, per-lane thresholds,
  dangling nodes, empty frontiers and B = 1;
* the batched Algorithm 3 exploration
  (:func:`repro.diagonal.local._exploit_deterministic_batch`) matches the
  sequential spec (:mod:`repro.diagonal.reference`): identical ℓ(k),
  identical budget-window accounting (so the adaptive level choice can never
  drift) and deterministic mass to 1e-12 — with or without a shared cache;
* PRSim's batched hub index build matches the per-hub reference walk bit for
  bit, and the flat COO payload round-trips bit-identically.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.diagonal.local import (
    DistributionCache,
    _exploit_deterministic_batch,
    estimate_diagonal_entry_local,
    first_meeting_probabilities,
)
from repro.diagonal.reference import (
    exploit_deterministic_reference,
    z_level_reference,
)
from repro.graph.digraph import DiGraph
from repro.graph.generators import power_law_graph
from repro.kernels.frontier import propagate_distribution, propagate_transpose
from repro.kernels.multiprop import MultiPropagation
from repro.kernels.sparsevec import SparseVector

DECAY = 0.6


def _random_graph(seed: int, num_nodes: int, with_self_loops: bool) -> DiGraph:
    """A random power-law graph with dangling nodes and optional self-loops."""
    base = power_law_graph(num_nodes, 3.0, exponent=2.1, directed=True, seed=seed)
    if not with_self_loops:
        return base
    rng = np.random.default_rng(seed + 1)
    loops = rng.choice(num_nodes, size=max(1, num_nodes // 8), replace=False)
    edges = np.vstack([base.edge_array(), np.column_stack([loops, loops])])
    return DiGraph.from_edges(edges, num_nodes=num_nodes, name="power-law+loops")


graph_strategy = st.builds(
    _random_graph,
    seed=st.integers(min_value=0, max_value=2**16),
    num_nodes=st.integers(min_value=2, max_value=60),
    with_self_loops=st.booleans(),
)


def _random_lanes(graph: DiGraph, seed: int, num_lanes: int):
    """Per-lane random sparse frontiers (some lanes deliberately empty)."""
    rng = np.random.default_rng(seed)
    frontiers = []
    for lane in range(num_lanes):
        size = int(rng.integers(0, min(graph.num_nodes, 10) + 1))
        nodes = np.sort(rng.choice(graph.num_nodes, size=size, replace=False))
        values = rng.uniform(1e-6, 1.0, size=size)
        frontiers.append(SparseVector(nodes.astype(np.int64), values))
    return frontiers


def _seed_engine(engine: MultiPropagation, frontiers) -> None:
    rows = np.concatenate([np.full(f.nnz, lane, dtype=np.int64)
                           for lane, f in enumerate(frontiers)])
    cols = np.concatenate([f.indices for f in frontiers])
    vals = np.concatenate([f.values for f in frontiers])
    engine.seed(rows, cols, vals)


class TestMultiPropagationKernel:
    @settings(max_examples=40, deadline=None)
    @given(graph=graph_strategy,
           seed=st.integers(min_value=0, max_value=2**16),
           num_lanes=st.integers(min_value=1, max_value=7),
           steps=st.integers(min_value=1, max_value=3))
    def test_forward_matches_sequential_bitwise(self, graph, seed, num_lanes, steps):
        frontiers = _random_lanes(graph, seed, num_lanes)
        engine = MultiPropagation.forward(graph, num_lanes)
        _seed_engine(engine, frontiers)
        expected = list(frontiers)
        for _ in range(steps):
            edges = engine.step()
            for lane in range(num_lanes):
                advanced, cost = propagate_distribution(
                    graph.in_indptr, graph.in_indices, expected[lane],
                    num_nodes=graph.num_nodes)
                expected[lane] = advanced
                assert int(edges[lane]) == cost
                assert engine.frontier(lane) == advanced

    @settings(max_examples=25, deadline=None)
    @given(graph=graph_strategy,
           seed=st.integers(min_value=0, max_value=2**16),
           num_lanes=st.integers(min_value=1, max_value=5))
    def test_transpose_matches_sequential_bitwise(self, graph, seed, num_lanes):
        frontiers = _random_lanes(graph, seed, num_lanes)
        engine = MultiPropagation.adjoint(graph, num_lanes)
        _seed_engine(engine, frontiers)
        edges = engine.step()
        for lane in range(num_lanes):
            advanced, cost = propagate_transpose(
                graph.out_indptr, graph.out_indices, graph.in_degrees,
                frontiers[lane], num_nodes=graph.num_nodes)
            assert int(edges[lane]) == cost
            assert engine.frontier(lane) == advanced

    def test_active_mask_freezes_dormant_lanes(self, directed_graph):
        frontiers = _random_lanes(directed_graph, 5, 4)
        engine = MultiPropagation.forward(directed_graph, 4)
        _seed_engine(engine, frontiers)
        active = np.array([True, False, True, False])
        edges = engine.step(active=active)
        for lane in (1, 3):
            assert engine.frontier(lane) == frontiers[lane]
            assert edges[lane] == 0
        for lane in (0, 2):
            advanced, cost = propagate_distribution(
                directed_graph.in_indptr, directed_graph.in_indices,
                frontiers[lane], num_nodes=directed_graph.num_nodes)
            assert engine.frontier(lane) == advanced
            assert int(edges[lane]) == cost

    def test_scale_and_per_lane_thresholds(self, directed_graph):
        frontiers = _random_lanes(directed_graph, 9, 3)
        thresholds = np.array([0.0, 1e-3, 5e-2])
        scale = 0.7
        engine = MultiPropagation.forward(directed_graph, 3)
        _seed_engine(engine, frontiers)
        engine.step(scale=scale, thresholds=thresholds)
        for lane in range(3):
            advanced, _ = propagate_distribution(
                directed_graph.in_indptr, directed_graph.in_indices,
                frontiers[lane], num_nodes=directed_graph.num_nodes)
            expected = advanced.scaled(scale).filtered(thresholds[lane])
            assert engine.frontier(lane) == expected

    def test_snapshot_filters_without_touching_state(self, directed_graph):
        frontiers = _random_lanes(directed_graph, 3, 3)
        engine = MultiPropagation.forward(directed_graph, 3)
        _seed_engine(engine, frontiers)
        thresholds = np.array([0.2, 0.0, 0.9])
        rows, cols, vals = engine.snapshot(scale=0.5, thresholds=thresholds)
        for lane in range(3):
            sel = rows == lane
            expected = frontiers[lane].scaled(0.5).filtered(thresholds[lane])
            assert expected == SparseVector(cols[sel], vals[sel])
            # live state untouched
            assert engine.frontier(lane) == frontiers[lane]

    def test_terminate_drops_lanes(self, directed_graph):
        frontiers = _random_lanes(directed_graph, 11, 3)
        engine = MultiPropagation.forward(directed_graph, 3)
        _seed_engine(engine, frontiers)
        engine.terminate(np.array([1]))
        assert engine.frontier(1).nnz == 0
        assert engine.frontier(0) == frontiers[0]
        assert engine.frontier(2) == frontiers[2]

    def test_dangling_frontier_dies_with_zero_cost(self):
        graph = DiGraph.from_edges([(0, 1), (2, 3)])   # nodes 0, 2 dangling
        engine = MultiPropagation.forward(graph, 2)
        engine.seed_units(np.array([0, 1], dtype=np.int64))
        edges = engine.step()
        assert edges[0] == 0                      # lane at dangling node 0
        assert engine.frontier(0).nnz == 0
        assert engine.frontier(1) == SparseVector(
            np.array([0]), np.array([1.0]))       # node 1's in-neighbour
        # an all-empty engine keeps stepping harmlessly
        engine.terminate(np.array([1]))
        assert np.array_equal(engine.step(), np.zeros(2, dtype=np.int64))
        assert not engine.nonempty().any()


class TestBatchedExploitEquivalence:
    @pytest.fixture(scope="class")
    def walk_graph(self):
        return power_law_graph(300, 4.0, exponent=2.1, directed=True, seed=23)

    def test_matches_reference_with_shared_cache(self, walk_graph):
        heavy = np.argsort(-walk_graph.in_degrees)[:30]
        heavy = heavy[walk_graph.in_degrees[heavy] > 1]
        rng = np.random.default_rng(1)
        pairs = rng.integers(32, 3000, heavy.shape[0])
        requests = list(zip(heavy.tolist(), pairs.tolist()))
        batch = _exploit_deterministic_batch(
            walk_graph, DistributionCache(walk_graph), requests,
            decay=DECAY, max_level=20)
        shared_reference = DistributionCache(walk_graph)
        for (node, num_pairs), (chosen, mass, traversed) in zip(requests, batch):
            for cache in (None, shared_reference):
                ref_chosen, ref_mass, ref_traversed = \
                    exploit_deterministic_reference(
                        walk_graph, node, num_pairs, decay=DECAY,
                        max_level=20, cache=cache)
                assert chosen == ref_chosen, f"ℓ(k) drifted for node {node}"
                assert traversed == ref_traversed, \
                    f"budget accounting drifted for node {node}"
                assert mass == pytest.approx(ref_mass, abs=1e-12)

    def test_exhaustion_boundaries_match_reference(self, walk_graph):
        # Sweep tight budgets across one heavy node so exhaustion fires at
        # many different points (pre-level check and mid-level raise alike).
        node = int(np.argmax(walk_graph.in_degrees))
        for num_pairs in range(32, 600, 17):
            batch = _exploit_deterministic_batch(
                walk_graph, DistributionCache(walk_graph),
                [(node, num_pairs)], decay=DECAY, max_level=20)[0]
            reference = exploit_deterministic_reference(
                walk_graph, node, num_pairs, decay=DECAY, max_level=20)
            assert batch[0] == reference[0]
            assert batch[2] == reference[2]
            assert batch[1] == pytest.approx(reference[1], abs=1e-12)

    def test_memoised_repeat_is_identical(self, walk_graph):
        node = int(np.argmax(walk_graph.in_degrees))
        cache = DistributionCache(walk_graph)
        first = _exploit_deterministic_batch(
            walk_graph, cache, [(node, 500)], decay=DECAY, max_level=20)[0]
        repeat = _exploit_deterministic_batch(
            walk_graph, cache, [(node, 500), (node, 500)],
            decay=DECAY, max_level=20)
        assert repeat[0] == first and repeat[1] == first

    def test_entry_local_rides_batched_exploration(self, walk_graph):
        node = int(np.argmax(walk_graph.in_degrees))
        result = estimate_diagonal_entry_local(walk_graph, node, 400,
                                               decay=DECAY, seed=3)
        chosen, mass, traversed = exploit_deterministic_reference(
            walk_graph, node, 400, decay=DECAY, max_level=20)
        assert result.chosen_level == chosen
        assert result.traversed_edges == traversed
        assert result.deterministic_mass == pytest.approx(mass, abs=1e-12)

    def test_first_meeting_matches_reference_recursion(self, directed_graph):
        node = int(np.argmax(directed_graph.in_degrees))
        produced = first_meeting_probabilities(directed_graph, node, 5,
                                               decay=DECAY)
        cache = DistributionCache(directed_graph)
        window = cache.new_window(None)
        z_levels = []
        for level in range(1, 6):
            z_levels.append(z_level_reference(cache, window, node, level,
                                              z_levels, DECAY))
        for level_dict, (indices, values) in zip(produced, z_levels):
            assert level_dict == dict(zip(indices.tolist(), values.tolist()))


class TestDistributionCacheBatchedPaths:
    @pytest.fixture(scope="class")
    def walk_graph_small(self):
        return power_law_graph(200, 4.0, exponent=2.1, directed=True, seed=29)

    def test_prefetch_materialises_bitwise_levels(self, directed_graph):
        starts = np.argsort(-directed_graph.in_degrees)[:6].astype(np.int64)
        steps = np.array([3, 1, 4, 2, 3, 1], dtype=np.int64)
        batched = DistributionCache(directed_graph)
        batched.prefetch(starts, steps)
        sequential = DistributionCache(directed_graph)
        for start, target in zip(starts.tolist(), steps.tolist()):
            for level in range(target + 1):
                assert batched.peek(start, level) == \
                    sequential.distribution(start, level)
        # prefetching again is a no-op (nothing to extend)
        bytes_before = batched.memory_bytes()
        batched.prefetch(starts, steps)
        assert batched.memory_bytes() == bytes_before

    def test_gather_stacked_matches_distribution(self, directed_graph):
        starts = np.sort(np.argsort(-directed_graph.in_degrees)[:5]).astype(np.int64)
        cache = DistributionCache(directed_graph)
        cache.prefetch(starts, np.full(5, 2, dtype=np.int64))
        lengths, indices, values = cache.gather_stacked(starts, 2)
        offset = 0
        for start, length in zip(starts.tolist(), lengths.tolist()):
            vector = cache.peek(start, 2)
            assert vector == SparseVector(indices[offset:offset + length],
                                          values[offset:offset + length])
            offset += length

    def test_gather_stacked_requires_prefetch(self, directed_graph):
        cache = DistributionCache(directed_graph)
        cache.prefetch(np.array([1], dtype=np.int64),
                       np.array([1], dtype=np.int64))
        with pytest.raises(KeyError):
            cache.gather_stacked(np.array([0], dtype=np.int64), 1)

    def test_eviction_never_changes_outcomes(self, directed_graph):
        node = int(np.argmax(directed_graph.in_degrees))
        tight = DistributionCache(directed_graph, max_bytes=1)   # evict always
        roomy = DistributionCache(directed_graph)
        for cache in (tight, roomy):
            cache._results = _exploit_deterministic_batch(
                directed_graph, cache, [(node, 256)], decay=DECAY,
                max_level=20)
        assert tight._results == roomy._results

    def test_mid_batch_eviction_keeps_windows_exact(self, walk_graph_small):
        """Eviction between levels must not double-charge or strand windows.

        A window that paid for levels an eviction dropped re-materialises
        them for free: ℓ(k), masses and traversed-edge accounting must match
        the never-evicting run for a whole multi-node batch.
        """
        heavy = np.argsort(-walk_graph_small.in_degrees)[:25]
        heavy = heavy[walk_graph_small.in_degrees[heavy] > 1]
        requests = [(int(node), pairs) for node in heavy
                    for pairs in (64, 900)]
        roomy = _exploit_deterministic_batch(
            walk_graph_small, DistributionCache(walk_graph_small), requests,
            decay=DECAY, max_level=20)
        tight = _exploit_deterministic_batch(
            walk_graph_small, DistributionCache(walk_graph_small, max_bytes=1),
            requests, decay=DECAY, max_level=20)
        assert roomy == tight

    def test_window_never_pays_twice_across_eviction(self, directed_graph):
        cache = DistributionCache(directed_graph)
        node = int(np.argmax(directed_graph.in_degrees))
        window = cache.new_window(None)
        cache.distribution(node, 3, window)
        paid = window.traversed_edges
        cache.max_bytes = 1
        cache._maybe_evict()
        cache.max_bytes = None
        # Re-materialising paid levels is free; one unpaid level then charges.
        cache.distribution(node, 3, window)
        assert window.traversed_edges == paid
        before = window.traversed_edges
        cache.distribution(node, 4, window)
        assert window.traversed_edges > before
        # charge() on a paid-but-evicted start must re-materialise so the
        # stacked gather finds the level.
        other = cache.new_window(None)
        cache.distribution(node, 2, other)
        cache.max_bytes = 1
        cache._maybe_evict()
        cache.max_bytes = None
        cache.charge(other, np.array([node], dtype=np.int64), 2)
        lengths, _, _ = cache.gather_stacked(np.array([node], dtype=np.int64), 2)
        assert lengths.shape == (1,)


class TestPRSimBatchedBuild:
    @pytest.fixture(scope="class")
    def prepared(self, directed_graph):
        from repro.baselines.prsim import PRSim
        return PRSim(directed_graph, epsilon=1e-2, hub_fraction=0.15,
                     seed=11).preprocess()

    def test_hub_vectors_match_reference(self, prepared):
        """Dense-lane build: supports exact, values ≤ 1e-12 vs the per-hub walk.

        The dense engine's matrix product orders the float additions
        differently from the sum-then-divide kernel, so values agree to
        ~1e-15 per level rather than bit-for-bit; the stored supports (and
        hence index size and pruning decisions) must be identical.
        """
        iterations = prepared.num_iterations()
        threshold = (1.0 - prepared._operator.sqrt_c) ** 2 * prepared.epsilon
        batched = prepared._build_hub_vectors(prepared._hubs, iterations,
                                              threshold)
        reference = prepared._build_hub_vectors_reference(
            prepared._hubs, iterations, threshold)
        for built, expected in zip(batched[:3], reference[:3]):
            assert np.array_equal(built, expected)
        assert np.max(np.abs(batched[3] - reference[3])) <= 1e-12
        for stored, built in zip(prepared._hub_flat, batched):
            assert np.array_equal(stored, built)

    def test_flat_payload_roundtrip_bit_identical(self, prepared, directed_graph):
        from repro.baselines.prsim import PRSim
        payload = {key: np.array(value)
                   for key, value in prepared._index_payload().items()}
        restored = PRSim(directed_graph, epsilon=1e-2, hub_fraction=0.15,
                         seed=11)
        restored._restore_index(payload)
        restored._prepared = True
        for stored, expected in zip(restored._hub_flat, prepared._hub_flat):
            assert np.array_equal(stored, expected)
        assert np.array_equal(restored._hubs, prepared._hubs)
        assert np.array_equal(restored._diagonal, prepared._diagonal)
        before = prepared.single_source(3).scores
        after = restored.single_source(3).scores
        assert np.array_equal(before, after)

    def test_restore_rejects_out_of_range_entries(self, prepared, directed_graph):
        from repro.baselines.base import IndexPersistenceError
        from repro.baselines.prsim import PRSim
        for field, bad in (("hub_levels", 10_000), ("hub_cols", -1),
                           ("hub_cols", directed_graph.num_nodes)):
            payload = dict(prepared._index_payload())
            if payload[field].size == 0:
                continue
            corrupted = payload[field].copy()
            corrupted[0] = bad
            payload[field] = corrupted
            restored = PRSim(directed_graph, epsilon=1e-2, hub_fraction=0.15,
                             seed=11)
            with pytest.raises(IndexPersistenceError):
                restored._restore_index(payload)

    def test_restore_canonicalises_shuffled_payload(self, prepared, directed_graph):
        from repro.baselines.prsim import PRSim
        payload = prepared._index_payload()
        rng = np.random.default_rng(0)
        permutation = rng.permutation(payload["hub_cols"].shape[0])
        shuffled = dict(payload)
        for key in ("hub_positions", "hub_levels", "hub_cols", "hub_vals"):
            shuffled[key] = payload[key][permutation]
        restored = PRSim(directed_graph, epsilon=1e-2, hub_fraction=0.15,
                         seed=11)
        restored._restore_index(shuffled)
        for stored, expected in zip(restored._hub_flat, prepared._hub_flat):
            assert np.array_equal(stored, expected)

    def test_hub_pass_matches_dense_accumulation(self, prepared, directed_graph):
        """The one-bincount hub pass equals the per-(hub, level) dense loop."""
        from repro.ppr.hop_ppr import hop_ppr_vectors
        source = 3
        iterations = prepared.num_iterations()
        hop_ppr = hop_ppr_vectors(directed_graph, source, iterations,
                                  decay=prepared.decay,
                                  operator=prepared._operator)
        scale = 1.0 / (1.0 - prepared._operator.sqrt_c) ** 2
        positions, levels, cols, vals = prepared._hub_flat
        expected = np.zeros(directed_graph.num_nodes)
        for position, hub in enumerate(prepared._hubs.tolist()):
            for level in range(iterations + 1):
                sel = (positions == position) & (levels == level)
                if not sel.any():
                    continue
                dense = np.zeros(directed_graph.num_nodes)
                dense[cols[sel]] = vals[sel]
                expected += scale * prepared._diagonal[hub] * \
                    hop_ppr.hop_dense(level)[hub] * dense
        hub_mass = np.empty((prepared._hubs.shape[0], iterations + 1))
        for level in range(iterations + 1):
            hub_mass[:, level] = hop_ppr.hop_dense(level)[prepared._hubs]
        entry_weights = (scale * prepared._diagonal[prepared._hubs])[positions] \
            * hub_mass[positions, levels]
        produced = np.bincount(cols, weights=vals * entry_weights,
                               minlength=directed_graph.num_nodes)
        assert np.max(np.abs(produced - expected)) < 1e-12
