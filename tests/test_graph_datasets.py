"""Unit tests for the dataset registry (Table 2 stand-ins)."""

import pytest

from repro.graph.datasets import (
    DatasetSpec,
    dataset_names,
    dataset_table,
    get_spec,
    load_dataset,
)


class TestRegistry:
    def test_all_eight_datasets_registered(self):
        assert len(dataset_names()) == 8

    def test_scale_filters(self):
        assert set(dataset_names("small")) == {"GQ", "HT", "WV", "HP"}
        assert set(dataset_names("large")) == {"DB", "IC", "IT", "TW"}

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            dataset_names("medium")

    def test_get_spec_fields(self):
        spec = get_spec("GQ")
        assert isinstance(spec, DatasetSpec)
        assert spec.paper_name == "ca-GrQc"
        assert spec.kind == "undirected"
        assert spec.paper_nodes == 5_242

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            get_spec("nope")

    def test_paper_sizes_match_table2(self):
        assert get_spec("TW").paper_edges == 1_468_364_884
        assert get_spec("WV").kind == "directed"
        assert get_spec("DB").kind == "undirected"


class TestLoading:
    def test_small_dataset_loads_and_memoises(self):
        first = load_dataset("GQ")
        second = load_dataset("GQ")
        assert first is second
        assert first.num_nodes > 100
        assert first.num_edges > first.num_nodes

    def test_directed_small_dataset(self):
        graph = load_dataset("WV")
        assert graph.directed
        assert graph.num_nodes > 100

    def test_undirected_dataset_is_symmetric(self):
        graph = load_dataset("HT")
        for source, target in list(graph.edges())[:50]:
            assert graph.has_edge(target, source)

    def test_spec_load_matches_registry(self):
        assert get_spec("GQ").load() == load_dataset("GQ")


class TestTable2:
    def test_rows_without_generation(self):
        rows = dataset_table(include_generated_sizes=False)
        assert len(rows) == 8
        assert {row["dataset"] for row in rows} == set(dataset_names())
        assert all("repro_n" not in row for row in rows)

    def test_rows_have_paper_sizes(self):
        rows = {row["dataset"]: row for row in dataset_table(include_generated_sizes=False)}
        assert rows["IT"]["paper_m"] == 1_135_718_909
        assert rows["GQ"]["type"] == "undirected"
