"""Statistical-equivalence suite: compacted/aggregated engine vs reference.

The production :class:`SqrtCWalkEngine` compacts to the live frontier and
aggregates identical walk states into counts, so its RNG schedule differs
from the full-width :class:`ReferenceWalkEngine` (the executable spec).  The
two must nevertheless simulate the *same process*: these tests pin

* visit-count distributions (per step and total) within sampling tolerance,
* meeting probabilities (plain, batch and non-stop-prefix tail) within
  sampling tolerance,
* exact seed-determinism of the compacted path, including a pinned fixture
  so a change to the RNG consumption pattern cannot slip through unnoticed,
* alive-compaction edge cases: all walks dead at step 1, dangling nodes
  mid-walk, ``skip_steps`` prefixes.
"""

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import power_law_graph
from repro.randomwalk.aggregate import group_sum, multinomial_split
from repro.randomwalk.engine import SqrtCWalkEngine
from repro.randomwalk.reference import ReferenceWalkEngine

DECAY = 0.6


@pytest.fixture(scope="module")
def walk_graph():
    """Directed power-law graph with hubs and dangling nodes."""
    return power_law_graph(400, 4.0, exponent=2.1, directed=True, seed=17)


class TestKernels:
    def test_group_sum_matches_manual(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 200)
        b = rng.integers(0, 7, 200)
        counts = rng.integers(1, 9, 200)
        (ua, ub), sums = group_sum(counts, a, b)
        totals = {}
        for x, y, c in zip(a, b, counts):
            totals[(int(x), int(y))] = totals.get((int(x), int(y)), 0) + int(c)
        assert len(sums) == len(totals)
        for x, y, s in zip(ua, ub, sums):
            assert totals[(int(x), int(y))] == int(s)
        # Lexicographic order with the last key primary.
        keys = list(zip(ub.tolist(), ua.tolist()))
        assert keys == sorted(keys)

    def test_group_sum_wide_keys_fall_back_to_lexsort(self):
        huge = np.array([0, 2 ** 61, 0, 2 ** 61], dtype=np.int64)
        small = np.array([1, 1, 1, 0], dtype=np.int64)
        counts = np.array([1, 2, 3, 4], dtype=np.int64)
        (u_small, u_huge), sums = group_sum(counts, small, huge)
        assert sums.sum() == 10
        assert set(zip(u_small.tolist(), u_huge.tolist())) == \
            {(1, 0), (1, 2 ** 61), (0, 2 ** 61)}

    def test_multinomial_split_conserves_counts(self, walk_graph):
        rng = np.random.default_rng(1)
        eligible = np.flatnonzero(walk_graph.in_degrees > 0)
        nodes = eligible[:50].astype(np.int64)
        counts = rng.integers(1, 1000, nodes.shape[0])
        rows, dests, split = multinomial_split(
            rng, walk_graph.in_indptr, walk_graph.in_indices, nodes, counts)
        assert split.sum() == counts.sum()
        per_row = np.bincount(rows, weights=split, minlength=nodes.shape[0])
        assert np.array_equal(per_row.astype(np.int64), counts)
        # Every destination must be an in-neighbour of its source state.
        for row, dest in zip(rows[:200], dests[:200]):
            assert dest in walk_graph.in_neighbors(int(nodes[row]))

    def test_multinomial_split_pow2_padding_stays_on_real_neighbours(self):
        # Degrees 3, 5, 6, 7 pad to buckets 4 and 8: padded zero-probability
        # columns must never emit a walk, and every destination must be a
        # true in-neighbour of its state even at huge counts (the leftover
        # of the sequential binomial draws lands on the LAST — real —
        # category by construction).
        edges = []
        hubs = {0: 3, 10: 5, 20: 6, 30: 7}
        leaf = 40
        for hub, degree in hubs.items():
            for _ in range(degree):
                edges.append((leaf, hub))
                leaf += 1
        graph = DiGraph.from_edges(edges)
        rng = np.random.default_rng(8)
        nodes = np.array(sorted(hubs), dtype=np.int64)
        counts = np.full(nodes.shape[0], 100_000, dtype=np.int64)
        rows, dests, split = multinomial_split(
            rng, graph.in_indptr, graph.in_indices, nodes, counts)
        per_row = np.bincount(rows, weights=split, minlength=nodes.shape[0])
        assert np.array_equal(per_row.astype(np.int64), counts)
        for row in range(nodes.shape[0]):
            neighbours = set(graph.in_neighbors(int(nodes[row])).tolist())
            assert set(dests[rows == row].tolist()) <= neighbours
            sel = rows == row
            shares = np.bincount(dests[sel] - dests[sel].min(),
                                 weights=split[sel])
            shares = shares[shares > 0] / 100_000
            degree = len(neighbours)
            assert np.all(np.abs(shares - 1.0 / degree) < 0.02)

    def test_multinomial_split_uniform_marginals(self):
        # Star: hub 0 with 6 leaves pointing at it; one state, huge count.
        edges = [(leaf, 0) for leaf in range(1, 7)]
        graph = DiGraph.from_edges(edges)
        rng = np.random.default_rng(2)
        _, dests, split = multinomial_split(
            rng, graph.in_indptr, graph.in_indices,
            np.array([0], dtype=np.int64), np.array([60_000], dtype=np.int64))
        totals = np.bincount(dests, weights=split, minlength=7)[1:]
        assert np.all(np.abs(totals / 60_000 - 1.0 / 6.0) < 0.01)


class TestStatisticalEquivalence:
    def test_visit_distribution_matches_reference(self, walk_graph):
        source = int(np.argmax(walk_graph.in_degrees))
        aggregated = SqrtCWalkEngine(walk_graph, DECAY, seed=3) \
            .estimate_visit_distribution(source, 40_000, max_steps=6)
        reference = ReferenceWalkEngine(walk_graph, DECAY, seed=4) \
            .estimate_visit_distribution(source, 40_000, max_steps=6)
        assert np.max(np.abs(aggregated - reference)) < 0.015

    def test_trajectory_visit_counts_match_reference(self, walk_graph):
        source = int(np.argmax(walk_graph.in_degrees))
        compacted = SqrtCWalkEngine(walk_graph, DECAY, seed=5) \
            .walks_from(source, 30_000, max_steps=20)
        reference = ReferenceWalkEngine(walk_graph, DECAY, seed=6) \
            .walks_from(source, 30_000, max_steps=20)
        ours = compacted.visit_counts(walk_graph.num_nodes) / 30_000
        theirs = reference.visit_counts(walk_graph.num_nodes) / 30_000
        assert np.max(np.abs(ours - theirs)) < 0.02
        # Survival per step must track √c on both engines.
        alive_ours = (compacted.positions >= 0).sum(axis=1)
        alive_theirs = (reference.positions >= 0).sum(axis=1)
        assert abs(alive_ours[1] - alive_theirs[1]) < 0.02 * 30_000

    def test_pair_meeting_matches_reference(self, walk_graph):
        node = int(np.argmax(walk_graph.in_degrees))
        met_ref = ReferenceWalkEngine(walk_graph, DECAY, seed=7) \
            .pair_walks_meet(node, 30_000, max_steps=40).mean()
        met_agg = SqrtCWalkEngine(walk_graph, DECAY, seed=8).pair_meet_counts(
            np.array([node]), np.array([30_000]), max_steps=40)[0] / 30_000
        assert met_agg == pytest.approx(met_ref, abs=0.01)

    def test_tail_meeting_matches_reference(self, walk_graph):
        node = int(np.argmax(walk_graph.in_degrees))
        met_ref = ReferenceWalkEngine(walk_graph, DECAY, seed=9) \
            .pair_walks_meet(node, 30_000, max_steps=40, skip_steps=2).mean()
        met_agg = SqrtCWalkEngine(walk_graph, DECAY, seed=10).pair_meet_counts(
            np.array([node]), np.array([30_000]), max_steps=40,
            skip_steps=2)[0] / 30_000
        assert met_agg == pytest.approx(met_ref, abs=0.01)

    def test_batch_mask_matches_reference_per_node(self, walk_graph):
        eligible = np.flatnonzero(walk_graph.in_degrees > 1)[:6]
        starts = np.repeat(eligible, 5_000)
        mask_agg = SqrtCWalkEngine(walk_graph, DECAY, seed=11) \
            .pair_walks_meet_batch(starts, max_steps=40)
        mask_ref = ReferenceWalkEngine(walk_graph, DECAY, seed=12) \
            .pair_walks_meet_batch(starts, max_steps=40)
        for node in eligible:
            sel = starts == node
            assert mask_agg[sel].mean() == pytest.approx(
                mask_ref[sel].mean(), abs=0.02)

    def test_distinct_start_pairs_match_eq2(self, walk_graph):
        # pair_meet_counts_from with (i, j) starts is the eq. (2) estimator.
        rng = np.random.default_rng(13)
        eligible = np.flatnonzero(walk_graph.in_degrees > 0)
        i, j = (int(x) for x in rng.choice(eligible, 2, replace=False))
        met_ref = 0
        engine = ReferenceWalkEngine(walk_graph, DECAY, seed=14)
        first = np.full(20_000, i, dtype=np.int64)
        second = np.full(20_000, j, dtype=np.int64)
        met = np.zeros(20_000, dtype=bool)
        for _ in range(40):
            if not ((first >= 0) & (second >= 0) & ~met).any():
                break
            survive_first = engine.rng.random(20_000) < engine.sqrt_c
            survive_second = engine.rng.random(20_000) < engine.sqrt_c
            first = engine._advance(first, survive_first)
            second = engine._advance(second, survive_second)
            met |= (first >= 0) & (first == second)
        met_ref = met.mean()
        met_agg = SqrtCWalkEngine(walk_graph, DECAY, seed=15).pair_meet_counts_from(
            np.array([i]), np.array([j]), np.array([20_000]),
            max_steps=40)[0] / 20_000
        assert met_agg == pytest.approx(met_ref, abs=0.01)


class TestDeterminism:
    def test_compacted_trajectories_deterministic(self, walk_graph):
        first = SqrtCWalkEngine(walk_graph, DECAY, seed=42).walks_from(1, 257, max_steps=9)
        second = SqrtCWalkEngine(walk_graph, DECAY, seed=42).walks_from(1, 257, max_steps=9)
        assert np.array_equal(first.positions, second.positions)
        assert np.array_equal(first.lengths, second.lengths)

    def test_aggregated_counts_deterministic(self, walk_graph):
        node = int(np.argmax(walk_graph.in_degrees))
        runs = [SqrtCWalkEngine(walk_graph, DECAY, seed=42).pair_meet_counts(
            np.array([node, 3]), np.array([5_000, 2_000]), max_steps=30)
            for _ in range(2)]
        assert np.array_equal(runs[0], runs[1])

    def test_pinned_compacted_fixture(self):
        """Seeded compacted runs must stay bit-identical across sessions.

        The fixture pins both the trajectory path and the aggregated
        pair-meeting path on a fixed 8-node graph.  If an engine change
        intentionally alters the RNG consumption pattern, regenerate the
        constants with the snippet in the assertion message.
        """
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0), (3, 1), (4, 2),
                                    (2, 3), (1, 4), (5, 4), (6, 5), (0, 6)])
        engine = SqrtCWalkEngine(graph, DECAY, seed=2020)
        batch = engine.walks_from(2, 6, max_steps=4)
        expected_positions = np.array(
            [[2, 2, 2, 2, 2, 2],
             [4, 4, -1, 4, 1, -1],
             [-1, 5, -1, 1, -1, -1],
             [-1, -1, -1, 0, -1, -1],
             [-1, -1, -1, -1, -1, -1]], dtype=np.int64)
        met = engine.pair_meet_counts(np.array([2, 1]), np.array([50, 40]),
                                      max_steps=6)
        expected_met = np.array([18, 15], dtype=np.int64)
        hint = ("regenerate with: SqrtCWalkEngine(graph, 0.6, seed=2020); "
                "walks_from(2, 6, max_steps=4).positions; "
                "pair_meet_counts([2, 1], [50, 40], max_steps=6)")
        assert np.array_equal(batch.positions, expected_positions), hint
        assert np.array_equal(met, expected_met), hint


class TestEdgeCases:
    def test_all_walks_dead_at_step_one(self):
        # Start node is dangling: every walk dies immediately on every path.
        graph = DiGraph.from_edges([(0, 1), (2, 3)])
        engine = SqrtCWalkEngine(graph, DECAY, seed=1)
        batch = engine.walks_from(0, 64, max_steps=8)
        assert np.all(batch.positions[1:] == -1)
        assert np.all(batch.lengths == 0)
        levels = engine.visit_count_steps(np.array([0]), np.array([1_000]),
                                          max_steps=8)
        assert len(levels) == 1
        met = engine.pair_meet_counts(np.array([0]), np.array([1_000]))
        assert met[0] == 0

    def test_dangling_nodes_mid_walk(self):
        # 0 -> 1 -> 2 chain in reverse-walk direction: walks from 2 pass
        # through 1 and then die at 0 (no in-neighbour).  Pairs from 2 move
        # in lock-step (in-degree 1 everywhere), so a pair meets iff both
        # walks survive step 1 — probability c.
        graph = DiGraph.from_edges([(0, 1), (1, 2)])
        engine = SqrtCWalkEngine(graph, DECAY, seed=2)
        levels = engine.visit_count_steps(np.array([2]), np.array([50_000]),
                                          max_steps=10)
        assert len(levels) <= 3                      # 2 -> 1 -> 0 -> extinct
        met = engine.pair_meet_counts(np.array([2]), np.array([50_000]))
        assert met[0] / 50_000 == pytest.approx(DECAY, abs=0.01)

    def test_skip_steps_excludes_prefix_meetings(self):
        # Star hub: with a 1-step non-stop prefix every pair reaches the
        # leaves; leaves are dangling so no meeting can happen afterwards.
        edges = [(leaf, 0) for leaf in range(1, 10)]
        graph = DiGraph.from_edges(edges)
        engine = SqrtCWalkEngine(graph, DECAY, seed=3)
        met = engine.pair_meet_counts(np.array([0]), np.array([2_000]),
                                      max_steps=5, skip_steps=1)
        assert met[0] == 0

    def test_per_origin_skip_steps(self, walk_graph):
        # Mixed prefixes in one call must match separate calls statistically.
        node = int(np.argmax(walk_graph.in_degrees))
        mixed = SqrtCWalkEngine(walk_graph, DECAY, seed=4).pair_meet_counts(
            np.array([node, node]), np.array([20_000, 20_000]),
            max_steps=40, skip_steps=np.array([0, 2]))
        split_runs = [
            SqrtCWalkEngine(walk_graph, DECAY, seed=5).pair_meet_counts(
                np.array([node]), np.array([20_000]), max_steps=40,
                skip_steps=skip)[0]
            for skip in (0, 2)]
        assert mixed[0] / 20_000 == pytest.approx(split_runs[0] / 20_000, abs=0.01)
        assert mixed[1] / 20_000 == pytest.approx(split_runs[1] / 20_000, abs=0.01)
        # A positive prefix only reports strictly-later meetings.
        assert mixed[1] <= mixed[0]

    def test_zero_count_origins_report_zero(self, walk_graph):
        engine = SqrtCWalkEngine(walk_graph, DECAY, seed=6)
        node = int(np.argmax(walk_graph.in_degrees))
        met = engine.pair_meet_counts(np.array([node, 5]), np.array([0, 100]))
        assert met[0] == 0

    def test_terminal_nodes_compacted(self):
        edges = [(leaf, 0) for leaf in range(1, 10)]
        graph = DiGraph.from_edges(edges)
        engine = SqrtCWalkEngine(graph, DECAY, seed=7)
        finals = engine.terminal_nodes(0, 100, steps=1)
        assert np.all(finals >= 1)
        finals_two = engine.terminal_nodes(0, 100, steps=2)
        assert np.all(finals_two == -1)
