"""Multi-worker serving suite: protocol, pool supervision, front end, mmap.

Four pillars, mirroring the scale-out serving design:

* **wire protocol** — length-prefixed JSON frames survive a socketpair
  round-trip, and corrupt/oversized frames read as a dead peer, never as a
  mangled message;
* **worker pool** — N forked workers return *bit-identical* answers to the
  single-process planner (including through a shared memory-mapped index),
  a SIGKILL mid-stream loses zero accepted queries (exactly-once
  re-dispatch), a hung worker is heartbeat-killed and its work re-routed,
  a poison query that crashes every worker it touches exhausts its
  re-dispatch budget into a structured ``worker_lost`` error instead of
  looping forever, and drain rejects new work while answering old;
* **front end** — responses come back strictly in input order, shed mode
  answers overload with structured ``overloaded`` payloads while the
  accepted queries still resolve, and every stats surface is one
  ``json.dumps`` away from the wire;
* **mmap persistence** — ``load_index(mmap_mode='r')`` attaches arrays as
  read-only memory maps (uncompressed saves) or falls back per member
  (compressed saves), with the same streamed CRC verification rejecting
  bit-flipped files either way.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import struct

import numpy as np
import pytest

from repro.algorithms import registry
from repro.baselines.base import IndexPersistenceError, _array_checksum
from repro.graph.generators import preferential_attachment_graph
from repro.service import (
    ERROR_DRAINING,
    ERROR_OVERLOADED,
    ERROR_TIMEOUT,
    ERROR_WORKER_LOST,
    Frontend,
    QueryPlanner,
    SinglePairQuery,
    SingleSourceQuery,
    TopKQuery,
    WorkerPool,
    outcome_to_wire,
)
from repro.service.faults import flip_byte
from repro.service.workers import (
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
)

CONFIGS = {
    "parsim": {"iterations": 10},
    "sling": {"epsilon": 3e-2, "seed": 7},
}

#: Payload keys that legitimately differ between runs (timings, cache routes).
VOLATILE_KEYS = ("query_seconds", "route", "batched")


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(80, 3, directed=False, seed=5)


def make_factory(graph, *, index_dir=None, index_mmap=False):
    def factory() -> QueryPlanner:
        return QueryPlanner(graph, default_method="parsim",
                            method_configs=CONFIGS, cache_entries=32,
                            index_dir=index_dir, index_mmap=index_mmap)
    return factory


def stable(payload):
    return {key: value for key, value in payload.items()
            if key not in VOLATILE_KEYS}


def mixed_queries(graph, count=24, method=None):
    n = graph.num_nodes
    queries = []
    for i in range(count):
        if i % 3 == 0:
            queries.append(SinglePairQuery(i % n, (i * 7) % n, method=method))
        elif i % 3 == 1:
            queries.append(TopKQuery(i % n, k=5, method=method))
        else:
            queries.append(SingleSourceQuery(i % n, method=method))
    return queries


async def wait_for(predicate, timeout=15.0, interval=0.05):
    for _ in range(int(timeout / interval)):
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


# --------------------------------------------------------------------------- #
# wire protocol
# --------------------------------------------------------------------------- #
class TestFrameProtocol:
    def test_round_trip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = {"op": "batch", "id": 7,
                       "queries": [{"type": "top_k", "source": 3, "k": 5}]}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_eof_and_torn_frames_read_as_dead_peer(self):
        a, b = socket.socketpair()
        try:
            a.sendall(encode_frame({"op": "x"})[:3])    # torn mid-header
            a.close()
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            assert recv_frame(b) is None
        finally:
            a.close()
            b.close()

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        try:
            body = json.dumps([1, 2, 3]).encode()
            a.sendall(struct.pack(">I", len(body)) + body)
            assert recv_frame(b) is None
        finally:
            a.close()
            b.close()

    def test_async_reader_matches_blocking_writer(self):
        async def scenario():
            a, b = socket.socketpair()
            reader, _writer = await asyncio.open_connection(sock=b)
            send_frame(a, {"op": "heartbeat", "pid": 42})
            message = await read_frame(reader)
            a.close()
            assert await read_frame(reader) is None     # EOF after close
            return message

        assert asyncio.run(scenario()) == {"op": "heartbeat", "pid": 42}


# --------------------------------------------------------------------------- #
# worker pool
# --------------------------------------------------------------------------- #
class TestWorkerPool:
    def test_pool_matches_single_process_bit_identically(self, graph):
        queries = mixed_queries(graph)

        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=2, batch_size=4)
            await pool.start()
            try:
                futures = [pool.submit(query) for query in queries]
                return await asyncio.gather(*futures)
            finally:
                await pool.drain()

        pooled = asyncio.run(scenario())
        planner = make_factory(graph)()
        reference = [json.loads(json.dumps(outcome_to_wire(outcome)))
                     for outcome in planner.answer(queries)]
        assert [stable(p) for p in pooled] == [stable(r) for r in reference]

    def test_chaos_sigkill_loses_zero_accepted_queries(self, graph):
        queries = mixed_queries(graph, count=40)

        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=3, batch_size=4)
            await pool.start()
            try:
                futures = [pool.submit(query) for query in queries]
                await asyncio.gather(*futures[:5])
                victim = pool.pids()[0]
                os.kill(victim, signal.SIGKILL)
                payloads = await asyncio.wait_for(asyncio.gather(*futures), 60)
                # The pool returns to full strength without operator action.
                assert await wait_for(
                    lambda: pool.alive_count() == pool.num_workers)
                stats = pool.stats()
                return payloads, stats
            finally:
                await pool.drain()

        payloads, stats = asyncio.run(scenario())
        assert len(payloads) == len(queries)
        assert all("error" not in payload for payload in payloads)
        assert stats["deaths"] >= 1
        assert stats["spawns"] >= 4             # 3 initial + >= 1 respawn

    def test_hung_worker_is_heartbeat_killed_and_work_rerouted(self, graph):
        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=2,
                              batch_size=1, heartbeat_interval=0.05,
                              heartbeat_timeout=0.5)
            await pool.start()
            try:
                # Warm both workers so their planners exist.
                await asyncio.gather(
                    pool.submit(SinglePairQuery(0, 3)),
                    pool.submit(SinglePairQuery(1, 4)))
                victim = pool.pids()[0]
                os.kill(victim, signal.SIGSTOP)
                payload = await asyncio.wait_for(
                    pool.submit(TopKQuery(0, k=5)), 30)
                stats = pool.stats()
                return payload, stats
            finally:
                await pool.drain()

        payload, stats = asyncio.run(scenario())
        assert "error" not in payload and payload["type"] == "top_k"
        assert stats["heartbeat_kills"] >= 1
        assert stats["deaths"] >= 1

    def test_poison_query_exhausts_redispatch_into_worker_lost(self, graph):
        base_factory = make_factory(graph)

        def poison_factory():
            planner = base_factory()

            class Poisoned:
                def answer(self, queries, deadline_ms=None):
                    if any(query.source == 13 for query in queries):
                        os._exit(1)             # simulated hard crash
                    return planner.answer(queries, deadline_ms=deadline_ms)

                def stats(self):
                    return planner.stats()

            return Poisoned()

        async def scenario():
            pool = WorkerPool(poison_factory, num_workers=2, batch_size=1,
                              max_redispatch=2)
            await pool.start()
            try:
                poisoned = await asyncio.wait_for(
                    pool.submit(SinglePairQuery(13, 2)), 60)
                healthy = await asyncio.wait_for(
                    pool.submit(SinglePairQuery(1, 2)), 60)
                return poisoned, healthy, pool.stats()
            finally:
                await pool.drain()

        poisoned, healthy, stats = asyncio.run(scenario())
        assert poisoned["code"] == ERROR_WORKER_LOST
        assert poisoned["attempts"] == 2
        assert "error" not in healthy           # the pool survives the poison
        assert stats["worker_lost"] == 1
        assert stats["deaths"] >= 3             # initial + 2 re-dispatches

    def test_queue_expired_deadline_is_structured_timeout(self, graph):
        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=1)
            await pool.start()
            try:
                return await asyncio.wait_for(
                    pool.submit(SinglePairQuery(0, 1), deadline_ms=0.0), 30)
            finally:
                await pool.drain()

        payload = asyncio.run(scenario())
        assert payload["code"] == ERROR_TIMEOUT

    def test_drain_rejects_new_submissions(self, graph):
        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=1)
            await pool.start()
            accepted = await pool.submit(SinglePairQuery(2, 3))
            final = await pool.drain()
            rejected = await pool.submit(SinglePairQuery(4, 5))
            return accepted, rejected, final

        accepted, rejected, final = asyncio.run(scenario())
        assert "error" not in accepted
        assert rejected["code"] == ERROR_DRAINING
        assert final["alive"] == 0              # every child reaped
        assert final["workers_drained"] == 1
        assert final["worker_planner_totals"]["queries"] == 1.0

    def test_pool_stats_json_serializable(self, graph):
        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=1)
            await pool.start()
            try:
                await pool.submit(SinglePairQuery(0, 1))
                return pool.stats()
            finally:
                await pool.drain()

        stats = asyncio.run(scenario())
        assert json.loads(json.dumps(stats)) == stats
        assert stats["alive"] == 1 and stats["queries"] >= 1


# --------------------------------------------------------------------------- #
# shared memory-mapped index segments
# --------------------------------------------------------------------------- #
class TestSharedIndexSegments:
    @pytest.fixture()
    def index_dir(self, graph, tmp_path):
        algorithm = registry.create("sling", graph, CONFIGS["sling"])
        algorithm.preprocess()
        algorithm.save_index(tmp_path / f"{graph.name}.sling.npz",
                             compressed=False)
        return tmp_path

    def test_pool_on_mmapped_index_matches_single_process(self, graph,
                                                          index_dir):
        queries = mixed_queries(graph, count=12, method="sling")

        async def scenario():
            pool = WorkerPool(
                make_factory(graph, index_dir=index_dir, index_mmap=True),
                num_workers=2, batch_size=4)
            await pool.start()
            try:
                futures = [pool.submit(query) for query in queries]
                payloads = await asyncio.gather(*futures)
                return payloads, await pool.drain()
            finally:
                await pool.close()

        payloads, final = asyncio.run(scenario())
        planner = make_factory(graph, index_dir=index_dir)()
        reference = [json.loads(json.dumps(outcome_to_wire(outcome)))
                     for outcome in planner.answer(queries)]
        assert [stable(p) for p in payloads] == [stable(r) for r in reference]
        # Both workers attached the persisted index instead of rebuilding.
        assert final["worker_planner_totals"]["index_loads"] == 2.0


# --------------------------------------------------------------------------- #
# front end: ordering, shedding, drain
# --------------------------------------------------------------------------- #
class TestFrontend:
    def serve(self, graph, lines, **frontend_options):
        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=2, batch_size=4)
            await pool.start()
            frontend = Frontend(pool, graph.num_nodes, **frontend_options)
            written = []
            try:
                failures = await frontend.serve_lines(lines, written.append)
            finally:
                await pool.drain()
            return written, failures, frontend.stats()

        return asyncio.run(scenario())

    def test_responses_in_input_order_with_error_lines_interleaved(self, graph):
        lines = [
            json.dumps({"type": "single_pair", "source": 1, "target": 2}),
            "not json at all",
            json.dumps({"type": "top_k", "source": 5, "k": 3}),
            json.dumps({"type": "top_k", "source": 0, "k": 10_000}),
            "# a comment line",
            json.dumps({"type": "single_pair", "source": 4, "target": 4}),
        ]
        written, failures, stats = self.serve(graph, lines)
        assert len(written) == 5                # comment skipped
        assert failures == 2
        assert written[0]["type"] == "single_pair"
        assert written[1]["code"] == "parse_error"
        assert written[2]["type"] == "top_k" and written[2]["k"] == 3
        assert written[3]["code"] == "invalid_query"
        assert written[4]["score"] == 1.0       # self-similarity
        assert stats["parse_errors"] == 1 and stats["invalid"] == 1

    def test_shed_mode_bounds_inflight_and_answers_excess(self, graph):
        lines = [json.dumps({"type": "single_pair",
                             "source": i % 10, "target": (i + 1) % 10})
                 for i in range(12)]
        written, failures, stats = self.serve(graph, lines,
                                              max_inflight=1, shed=True)
        assert len(written) == len(lines)       # every line answered
        shed = [w for w in written if w.get("code") == ERROR_OVERLOADED]
        served = [w for w in written if "error" not in w]
        assert shed and served
        assert len(shed) + len(served) == len(lines)
        assert stats["shed"] == len(shed) and stats["accepted"] == len(served)
        assert failures == len(shed)

    def test_backpressure_mode_serves_everything(self, graph):
        lines = [json.dumps({"type": "top_k", "source": i % 10, "k": 4})
                 for i in range(20)]
        written, failures, stats = self.serve(graph, lines, max_inflight=2)
        assert len(written) == len(lines)
        assert failures == 0 and stats["shed"] == 0

    def test_request_stop_drains_accepted_lines_only(self, graph):
        frontend_holder = {}

        async def scenario():
            pool = WorkerPool(make_factory(graph), num_workers=1)
            await pool.start()
            frontend = Frontend(pool, graph.num_nodes)
            frontend_holder["frontend"] = frontend
            written = []

            async def lines():
                yield json.dumps({"type": "single_pair",
                                  "source": 1, "target": 2})
                frontend.request_stop()         # the SIGTERM path
                yield json.dumps({"type": "single_pair",
                                  "source": 3, "target": 4})

            failures = await frontend.serve_lines(lines(), written.append)
            await pool.drain()
            return written, failures

        written, failures = asyncio.run(scenario())
        assert len(written) == 1                # accepted line answered
        assert failures == 0
        assert frontend_holder["frontend"].stopping

    def test_frontend_stats_json_serializable(self, graph):
        written, _failures, stats = self.serve(
            graph, [json.dumps({"type": "single_pair",
                                "source": 0, "target": 1})])
        assert json.loads(json.dumps(stats)) == stats
        assert stats["lines"] == 1 and stats["responses"] == 1


# --------------------------------------------------------------------------- #
# mmap persistence: attach without materializing, verify by streamed CRC
# --------------------------------------------------------------------------- #
class TestMmapPersistence:
    @pytest.fixture()
    def algorithm(self, graph):
        return registry.create("sling", graph, CONFIGS["sling"]).preprocess()

    @staticmethod
    def _backed_by_map(array) -> bool:
        base = array
        while base is not None:
            if isinstance(base, np.memmap):
                return True
            base = getattr(base, "base", None)
        return False

    def test_uncompressed_load_attaches_memory_maps(self, algorithm, graph,
                                                    tmp_path):
        from repro.baselines.base import _mmap_npz_payload

        path = tmp_path / "index.npz"
        algorithm.save_index(path, compressed=False)
        payload = _mmap_npz_payload(path)
        mapped = [array for array in payload.values()
                  if isinstance(array, np.memmap)]
        assert mapped                            # real maps, not copies
        assert all(not array.flags.writeable for array in mapped)
        # And the restored algorithm keeps views of the mapping (asarray
        # re-classes but must not copy).
        fresh = registry.create("sling", graph, CONFIGS["sling"])
        fresh.load_index(path, mmap_mode="r")
        assert any(self._backed_by_map(array)
                   for array in fresh._index_payload().values())

    def test_mmap_answers_bit_identical_to_materialized(self, algorithm,
                                                        graph, tmp_path):
        path = tmp_path / "index.npz"
        algorithm.save_index(path, compressed=False)
        materialized = registry.create("sling", graph, CONFIGS["sling"])
        materialized.load_index(path)
        mmapped = registry.create("sling", graph, CONFIGS["sling"])
        mmapped.load_index(path, mmap_mode="r")
        for source in (0, 5, 17):
            assert np.array_equal(materialized.single_source(source).scores,
                                  mmapped.single_source(source).scores)

    def test_compressed_save_still_loads_with_mmap_mode(self, algorithm,
                                                        graph, tmp_path):
        path = tmp_path / "index.npz"
        algorithm.save_index(path, compressed=True)
        fresh = registry.create("sling", graph, CONFIGS["sling"])
        fresh.load_index(path, mmap_mode="r")    # per-member fallback
        assert np.array_equal(algorithm.single_source(3).scores,
                              fresh.single_source(3).scores)

    @pytest.mark.parametrize("compressed", [False, True])
    def test_bit_flip_detected_under_mmap(self, algorithm, graph, tmp_path,
                                          compressed):
        path = tmp_path / "index.npz"
        algorithm.save_index(path, compressed=compressed)
        flip_byte(path, int(path.stat().st_size * 0.7))
        fresh = registry.create("sling", graph, CONFIGS["sling"])
        with pytest.raises(IndexPersistenceError) as info:
            fresh.load_index(path, mmap_mode="r")
        assert str(path) in str(info.value)

    def test_invalid_mmap_mode_rejected(self, algorithm, tmp_path):
        path = tmp_path / "index.npz"
        algorithm.save_index(path)
        with pytest.raises(ValueError, match="mmap_mode"):
            algorithm.load_index(path, mmap_mode="r+")

    def test_streamed_checksum_matches_single_shot(self):
        rng = np.random.default_rng(3)
        contiguous = rng.standard_normal((257, 33))
        fortran = np.asfortranarray(contiguous)
        scalar = np.float64(1.5)
        for array in (contiguous, fortran, scalar,
                      np.arange(10_000, dtype=np.int64)):
            reference = _array_checksum(array)
            streamed = _array_checksum(array, chunk_bytes=1 << 10)
            assert streamed == reference
