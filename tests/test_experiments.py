"""Tests for the experiment harness and the figure/table drivers."""

import numpy as np
import pytest

from repro.experiments.ablation import (
    ablation_diagonal_estimators,
    ablation_sampling_allocation,
    ablation_sparse_linearization,
)
from repro.experiments.figures import (
    DEFAULT_GRIDS,
    default_method_sweeps,
    fig_ablation_basic_vs_optimized,
    fig_error_vs_index_size,
    fig_error_vs_preprocessing,
    fig_error_vs_query_time,
    ground_truth_provider,
)
from repro.experiments.harness import (
    ExperimentSettings,
    MethodSweep,
    Series,
    SweepPoint,
    run_method_sweep,
    select_query_nodes,
)
from repro.experiments.reporting import format_rows, format_series_table, series_to_rows
from repro.experiments.tables import table_dataset_statistics, table_memory_overhead
from repro.baselines.parsim import ParSim

FAST_SETTINGS = ExperimentSettings(num_queries=2, top_k=10, time_budget_seconds=60, seed=5)
TINY_GRIDS = {
    "exactsim": (1e-1, 1e-2),
    "mc": (10,),
    "parsim": (3, 8),
    "linearization": (20,),
    "prsim": (1e-1,),
}


class TestHarness:
    def test_settings_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(num_queries=0)
        with pytest.raises(ValueError):
            ExperimentSettings(top_k=0)

    def test_select_query_nodes_deterministic(self, collab_graph):
        first = select_query_nodes(collab_graph, 5, seed=3)
        second = select_query_nodes(collab_graph, 5, seed=3)
        assert np.array_equal(first, second)
        assert len(set(first.tolist())) == 5

    def test_select_query_nodes_require_in_edges(self, toy_graph):
        nodes = select_query_nodes(toy_graph, 3, seed=1, require_in_edges=True)
        assert 0 not in nodes.tolist()      # node 0 is dangling

    def test_select_query_nodes_caps_at_population(self, toy_graph):
        nodes = select_query_nodes(toy_graph, 100, seed=1)
        assert nodes.size <= toy_graph.num_nodes

    def test_run_method_sweep_produces_points(self, collab_graph, collab_simrank):
        sweep = MethodSweep("parsim", lambda L: ParSim(collab_graph, iterations=int(L)), (3, 6))
        series = run_method_sweep(collab_graph, sweep, [1, 2],
                                  lambda source: collab_simrank[source],
                                  settings=FAST_SETTINGS, dataset_name="collab")
        assert isinstance(series, Series)
        assert len(series.points) == 2
        for point in series.points:
            assert point.num_queries == 2
            assert point.max_error >= 0.0
            assert 0.0 <= point.precision_at_k <= 1.0
            assert point.query_seconds > 0.0

    def test_series_xy_skips_skipped_points(self):
        series = Series(algorithm="x", dataset="d", points=[
            SweepPoint(1.0, 0.1, 0.0, 0, 0.5, 1.0, 2),
            SweepPoint(2.0, np.nan, 0.0, 0, np.nan, np.nan, 0, skipped=True),
        ])
        assert len(series.xy("query_seconds", "max_error")) == 1

    def test_time_budget_skips_expensive_preprocessing(self, collab_graph, collab_simrank):
        """A method whose preprocessing exceeds the budget is marked skipped."""
        from repro.baselines.monte_carlo import MonteCarloSimRank
        strict = ExperimentSettings(num_queries=1, top_k=5, time_budget_seconds=1e-9, seed=1)
        sweep = MethodSweep("mc", lambda walks: MonteCarloSimRank(
            collab_graph, walks_per_node=int(walks), walk_length=5, seed=1), (10,))
        series = run_method_sweep(collab_graph, sweep, [1],
                                  lambda source: collab_simrank[source], settings=strict)
        assert series.points[0].skipped


class TestGroundTruthProvider:
    def test_small_scale_uses_power_method(self, collab_graph, collab_simrank):
        truth = ground_truth_provider(collab_graph, "small")
        assert np.allclose(truth(3), collab_simrank[3])

    def test_large_scale_uses_exactsim_and_caches(self, collab_graph, collab_simrank):
        truth = ground_truth_provider(collab_graph, "large", seed=3)
        scores = truth(4)
        assert np.max(np.abs(scores - collab_simrank[4])) < 1e-2
        assert truth(4) is scores          # cached


class TestFigureDrivers:
    def test_default_sweeps_cover_five_methods(self, collab_graph):
        sweeps = default_method_sweeps(collab_graph)
        assert set(sweeps) == set(DEFAULT_GRIDS)

    def test_fig_error_vs_query_time(self, collab_graph):
        series = fig_error_vs_query_time(collab_graph, methods=["exactsim", "parsim"],
                                         settings=FAST_SETTINGS, grids=TINY_GRIDS)
        names = {entry.algorithm for entry in series}
        assert names == {"exactsim", "parsim"}
        exact_series = next(entry for entry in series if entry.algorithm == "exactsim")
        # ExactSim's finest point should beat ParSim's best error (the paper's headline).
        parsim_series = next(entry for entry in series if entry.algorithm == "parsim")
        assert min(p.max_error for p in exact_series.points) <= \
            min(p.max_error for p in parsim_series.points)

    def test_fig_preprocessing_defaults_to_index_methods(self, collab_graph):
        series = fig_error_vs_preprocessing(collab_graph, settings=FAST_SETTINGS,
                                            grids=TINY_GRIDS)
        assert {entry.algorithm for entry in series} == {"mc", "prsim", "linearization"}
        for entry in series:
            for point in entry.points:
                if not point.skipped:
                    assert point.preprocessing_seconds > 0.0

    def test_fig_index_size_reports_bytes(self, collab_graph):
        series = fig_error_vs_index_size(collab_graph, methods=["mc"],
                                         settings=FAST_SETTINGS, grids=TINY_GRIDS)
        assert all(point.index_bytes > 0 for entry in series for point in entry.points
                   if not point.skipped)

    def test_fig_ablation_returns_two_series(self, collab_graph):
        series = fig_ablation_basic_vs_optimized(collab_graph, epsilons=(1e-1, 1e-2),
                                                 settings=FAST_SETTINGS, sample_cap=20_000)
        assert {entry.algorithm for entry in series} == {"exactsim-basic", "exactsim-optimized"}
        assert all(len(entry.points) == 2 for entry in series)


class TestTables:
    def test_table2_rows(self):
        rows = table_dataset_statistics(include_generated_sizes=False)
        assert len(rows) == 8

    def test_table3_memory_overhead(self, collab_graph):
        rows = table_memory_overhead([collab_graph], epsilon=1e-2, sample_cap=20_000)
        assert len(rows) == 1
        row = rows[0]
        assert row["basic_bytes"] > 0
        assert row["optimized_bytes"] > 0
        # The whole point of sparse linearization: optimized uses less memory.
        assert row["optimized_bytes"] <= row["basic_bytes"]
        assert row["reduction_factor"] >= 1.0


class TestAblations:
    def test_sampling_ablation(self, collab_graph):
        rows = ablation_sampling_allocation(collab_graph, epsilon=1e-2, sample_cap=20_000,
                                            num_queries=1, seed=3)
        labels = {row["allocation"] for row in rows}
        assert labels == {"proportional", "squared"}
        assert all(row["max_error"] < 0.05 for row in rows)

    def test_diagonal_ablation(self, collab_graph):
        rows = ablation_diagonal_estimators(collab_graph, epsilon=1e-2, sample_cap=20_000,
                                            num_queries=1, seed=3)
        assert {row["diagonal_estimator"] for row in rows} == {"algorithm-2", "algorithm-3"}

    def test_sparse_ablation_reduces_memory(self, collab_graph):
        rows = ablation_sparse_linearization(collab_graph, epsilon=1e-2, sample_cap=20_000,
                                             num_queries=1, seed=3)
        by_label = {row["linearization"]: row for row in rows}
        assert by_label["sparse"]["extra_memory_bytes"] <= \
            by_label["dense"]["extra_memory_bytes"]


class TestReporting:
    def test_format_rows_alignment(self):
        text = format_rows([{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_rows_empty(self):
        assert format_rows([]) == "(no rows)"

    def test_series_to_rows_and_table(self):
        series = Series(algorithm="alg", dataset="d", points=[
            SweepPoint(1.0, 0.1, 0.2, 10, 0.01, 0.9, 3)])
        rows = series_to_rows([series])
        assert rows[0]["algorithm"] == "alg"
        text = format_series_table([series])
        assert "alg" in text and "max_error" in text


class TestBatchedEvaluation:
    def test_query_time_budget_bounds_execution(self, collab_graph, collab_simrank):
        """An exhausted budget must stop issuing queries, not just trim stats."""
        from repro.baselines.base import SimRankAlgorithm
        from repro.core.result import SingleSourceResult
        from repro.experiments.harness import _BUDGET_CHUNK, _evaluate_point

        class SlowStub(SimRankAlgorithm):
            name = "slow-stub"
            answered = 0

            def single_source(self, source):
                type(self).answered += 1
                return SingleSourceResult(source=source,
                                          scores=collab_simrank[source].copy(),
                                          query_seconds=100.0)

        stub = SlowStub(collab_graph)
        nodes = list(range(4 * _BUDGET_CHUNK))
        point = _evaluate_point(stub, nodes, lambda s: collab_simrank[s], 5, 1.0)
        # Only the first chunk may execute; only its first query is counted.
        assert SlowStub.answered == _BUDGET_CHUNK
        assert point.num_queries == 1
