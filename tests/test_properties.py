"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.power_method import simrank_matrix
from repro.core.result import SingleSourceResult
from repro.core.sampling import allocate_proportional, allocate_squared
from repro.core.sparse import sparse_truncation_threshold, sparsify_vector
from repro.diagonal.exact import exact_diagonal
from repro.graph.digraph import DiGraph
from repro.graph.transition import reverse_transition_matrix
from repro.metrics.accuracy import max_error, precision_at_k, top_k_nodes
from repro.ppr.hop_ppr import hop_ppr_vectors

SLOW = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
FAST = settings(max_examples=50, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
def edge_lists(max_nodes: int = 12, max_edges: int = 40):
    node = st.integers(min_value=0, max_value=max_nodes - 1)
    return st.lists(st.tuples(node, node), min_size=0, max_size=max_edges)


def small_graphs(max_nodes: int = 12, max_edges: int = 40):
    return edge_lists(max_nodes, max_edges).map(
        lambda edges: DiGraph.from_edges(edges, num_nodes=max_nodes))


def probability_vectors(length: int = 20):
    return st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    min_size=length, max_size=length).map(
        lambda values: np.asarray(values, dtype=np.float64))


# --------------------------------------------------------------------------- #
# CSR graph invariants
# --------------------------------------------------------------------------- #
class TestGraphProperties:
    @FAST
    @given(edges=edge_lists())
    def test_csr_invariants(self, edges):
        graph = DiGraph.from_edges(edges, num_nodes=12)
        assert graph.in_indptr[0] == 0 and graph.out_indptr[0] == 0
        assert graph.in_indptr[-1] == graph.num_edges
        assert graph.out_indptr[-1] == graph.num_edges
        assert np.all(np.diff(graph.in_indptr) >= 0)
        assert np.all(np.diff(graph.out_indptr) >= 0)
        assert graph.in_degrees.sum() == graph.out_degrees.sum() == graph.num_edges

    @FAST
    @given(edges=edge_lists())
    def test_every_out_edge_has_matching_in_edge(self, edges):
        graph = DiGraph.from_edges(edges, num_nodes=12)
        for source, target in graph.edges():
            assert source in graph.in_neighbors(target)

    @FAST
    @given(edges=edge_lists())
    def test_reverse_is_involution(self, edges):
        graph = DiGraph.from_edges(edges, num_nodes=12)
        assert graph.reverse().reverse() == graph

    @FAST
    @given(edges=edge_lists())
    def test_deduplication_never_increases_on_rebuild(self, edges):
        graph = DiGraph.from_edges(edges, num_nodes=12)
        rebuilt = DiGraph.from_edges(list(graph.edges()), num_nodes=12)
        assert rebuilt == graph

    @FAST
    @given(edges=edge_lists())
    def test_transition_columns_are_stochastic_or_zero(self, edges):
        graph = DiGraph.from_edges(edges, num_nodes=12)
        matrix = reverse_transition_matrix(graph)
        sums = np.asarray(matrix.sum(axis=0)).ravel()
        for node in range(graph.num_nodes):
            expected = 1.0 if graph.in_degree(node) > 0 else 0.0
            assert sums[node] == pytest.approx(expected, abs=1e-12)


# --------------------------------------------------------------------------- #
# SimRank matrix properties
# --------------------------------------------------------------------------- #
class TestSimRankProperties:
    @SLOW
    @given(edges=edge_lists(max_nodes=9, max_edges=25),
           decay=st.sampled_from([0.4, 0.6, 0.8]))
    def test_simrank_matrix_is_valid_similarity(self, edges, decay):
        graph = DiGraph.from_edges(edges, num_nodes=9)
        similarity = simrank_matrix(graph, decay=decay)
        assert np.allclose(np.diag(similarity), 1.0)
        assert similarity.min() >= -1e-12
        assert similarity.max() <= 1.0 + 1e-12
        assert np.allclose(similarity, similarity.T, atol=1e-9)

    @SLOW
    @given(edges=edge_lists(max_nodes=9, max_edges=25))
    def test_simrank_definition_fixed_point(self, edges):
        """S satisfies eq. (1): off-diagonal entries equal the neighbour average."""
        decay = 0.6
        graph = DiGraph.from_edges(edges, num_nodes=9)
        similarity = simrank_matrix(graph, decay=decay, tolerance=1e-12)
        for i in range(graph.num_nodes):
            for j in range(i + 1, graph.num_nodes):
                in_i = graph.in_neighbors(i)
                in_j = graph.in_neighbors(j)
                if in_i.size == 0 or in_j.size == 0:
                    expected = 0.0
                else:
                    block = similarity[np.ix_(in_i, in_j)]
                    expected = decay * block.sum() / (in_i.size * in_j.size)
                assert similarity[i, j] == pytest.approx(expected, abs=1e-6)

    @SLOW
    @given(edges=edge_lists(max_nodes=9, max_edges=25))
    def test_exact_diagonal_entries_in_range(self, edges):
        decay = 0.6
        graph = DiGraph.from_edges(edges, num_nodes=9)
        similarity = simrank_matrix(graph, decay=decay)
        diagonal = exact_diagonal(graph, similarity, decay=decay)
        assert np.all(diagonal >= 1.0 - decay - 1e-9)
        assert np.all(diagonal <= 1.0 + 1e-9)


# --------------------------------------------------------------------------- #
# PPR properties
# --------------------------------------------------------------------------- #
class TestPPRProperties:
    @SLOW
    @given(edges=edge_lists(max_nodes=10, max_edges=30),
           source=st.integers(min_value=0, max_value=9))
    def test_hop_ppr_mass_bounded_by_one(self, edges, source):
        graph = DiGraph.from_edges(edges, num_nodes=10)
        hops = hop_ppr_vectors(graph, source, 20, decay=0.6)
        assert np.all(hops.total >= -1e-15)
        assert hops.total.sum() <= 1.0 + 1e-9

    @SLOW
    @given(edges=edge_lists(max_nodes=10, max_edges=30),
           source=st.integers(min_value=0, max_value=9),
           epsilon=st.sampled_from([1e-1, 1e-2, 1e-3]))
    def test_truncation_error_bounded_per_entry(self, edges, source, epsilon):
        """Lemma 2's premise: truncation changes each entry by < threshold."""
        graph = DiGraph.from_edges(edges, num_nodes=10)
        threshold = sparse_truncation_threshold(epsilon, decay=0.6)
        dense = hop_ppr_vectors(graph, source, 10, decay=0.6)
        truncated = hop_ppr_vectors(graph, source, 10, decay=0.6,
                                    truncation_threshold=threshold)
        for level in range(11):
            difference = dense.hop_dense(level) - truncated.hop_dense(level)
            assert np.all(difference >= -1e-15)
            assert np.all(difference <= threshold + 1e-15)


# --------------------------------------------------------------------------- #
# allocation / sparsification / metric properties
# --------------------------------------------------------------------------- #
class TestNumericProperties:
    @FAST
    @given(vector=probability_vectors(), budget=st.integers(min_value=0, max_value=10_000))
    def test_allocations_are_non_negative_and_cover_positive_entries(self, vector, budget):
        for allocate in (allocate_proportional, allocate_squared):
            allocation, realised = allocate(vector, budget)
            assert np.all(allocation >= 0)
            assert realised == allocation.sum()
            assert np.all(allocation[vector == 0] == 0)
        if budget > 0:
            # Proportional allocation covers every node with positive PPR mass
            # (the squared allocation may round the square of a subnormal to 0).
            allocation, _ = allocate_proportional(vector, budget)
            assert np.all(allocation[vector > 0] >= 1)

    @FAST
    @given(vector=probability_vectors(), budget=st.integers(min_value=1, max_value=10_000),
           cap=st.integers(min_value=1, max_value=500))
    def test_allocation_cap_respected_up_to_minimums(self, vector, budget, cap):
        allocation, realised = allocate_squared(vector, budget, cap=cap)
        assert realised <= cap + np.count_nonzero(vector)

    @FAST
    @given(vector=probability_vectors(),
           threshold=st.floats(min_value=1e-6, max_value=0.5, allow_nan=False))
    def test_sparsify_only_removes_small_entries(self, vector, threshold):
        result = sparsify_vector(vector, threshold)
        removed = (vector != result)
        assert np.all(vector[removed] < threshold)
        assert np.all(result[~removed] == vector[~removed])

    @FAST
    @given(scores=probability_vectors(), reference=probability_vectors(),
           k=st.integers(min_value=1, max_value=20))
    def test_metric_ranges(self, scores, reference, k):
        assert max_error(scores, reference) >= 0.0
        assert 0.0 <= precision_at_k(scores, reference, k) <= 1.0
        assert precision_at_k(reference, reference, k) == 1.0
        nodes = top_k_nodes(reference, k)
        assert len(set(nodes.tolist())) == nodes.shape[0] == min(k, reference.shape[0])

    @FAST
    @given(scores=probability_vectors(), k=st.integers(min_value=1, max_value=19),
           source=st.integers(min_value=0, max_value=19))
    def test_top_k_result_sorted_and_excludes_source(self, scores, k, source):
        result = SingleSourceResult(source=source, scores=scores)
        top = result.top_k(k)
        assert source not in top.nodes
        assert np.all(np.diff(top.scores) <= 1e-12)
