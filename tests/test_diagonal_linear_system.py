"""Tests for the linear-system route to the exact diagonal correction matrix."""

import numpy as np
import pytest

from repro.diagonal.exact import exact_diagonal
from repro.diagonal.linear_system import (
    linearized_diagonal_residual,
    solve_diagonal_linear_system,
)
from repro.graph.digraph import DiGraph

DECAY = 0.6


class TestSolveDiagonal:
    def test_matches_simrank_derived_diagonal_toy(self, toy_graph, toy_simrank):
        expected = exact_diagonal(toy_graph, toy_simrank, decay=DECAY)
        solved, iterations = solve_diagonal_linear_system(toy_graph, decay=DECAY)
        assert iterations >= 1
        assert np.max(np.abs(solved - expected)) < 1e-8

    def test_matches_simrank_derived_diagonal_collab(self, collab_graph, collab_simrank):
        expected = exact_diagonal(collab_graph, collab_simrank, decay=DECAY)
        solved, _ = solve_diagonal_linear_system(collab_graph, decay=DECAY)
        assert np.max(np.abs(solved - expected)) < 1e-8

    def test_solution_satisfies_unit_diagonal_constraint(self, collab_graph):
        solved, _ = solve_diagonal_linear_system(collab_graph, decay=DECAY, tolerance=1e-12)
        residual = linearized_diagonal_residual(collab_graph, solved, decay=DECAY)
        assert np.max(np.abs(residual)) < 1e-9

    def test_trivial_nodes(self, toy_graph):
        solved, _ = solve_diagonal_linear_system(toy_graph, decay=DECAY)
        assert solved[0] == pytest.approx(1.0, abs=1e-9)            # dangling
        assert solved[1] == pytest.approx(1.0 - DECAY, abs=1e-9)    # single in-neighbour

    def test_different_decay_factor(self, toy_graph):
        solved, _ = solve_diagonal_linear_system(toy_graph, decay=0.8)
        assert np.all(solved >= 1.0 - 0.8 - 1e-9)
        assert np.all(solved <= 1.0 + 1e-9)

    def test_empty_graph(self):
        solved, iterations = solve_diagonal_linear_system(DiGraph.empty(0))
        assert solved.shape == (0,)
        assert iterations == 0

    def test_residual_of_parsim_approximation_is_nonzero(self, collab_graph):
        """The (1 − c)·I approximation violates the unit-diagonal constraint."""
        approx = np.full(collab_graph.num_nodes, 1.0 - DECAY)
        residual = linearized_diagonal_residual(collab_graph, approx, decay=DECAY)
        assert np.max(np.abs(residual)) > 1e-3
