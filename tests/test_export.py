"""Tests for CSV export and ASCII scatter rendering of experiment series."""

import csv

import numpy as np
import pytest

from repro.experiments.export import ascii_scatter, series_to_csv
from repro.experiments.harness import Series, SweepPoint


def _sample_series():
    fast = Series(algorithm="exactsim", dataset="GQ", points=[
        SweepPoint(1e-1, 0.1, 0.0, 0, 1e-2, 0.9, 3),
        SweepPoint(1e-2, 0.2, 0.0, 0, 1e-3, 1.0, 3),
    ])
    slow = Series(algorithm="mc", dataset="GQ", points=[
        SweepPoint(10, 0.01, 0.5, 1000, 1e-1, 0.4, 3),
        SweepPoint(100, 0.05, 2.0, 10000, 5e-2, 0.6, 3, skipped=False),
    ])
    return [fast, slow]


class TestCsvExport:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "fig1.csv"
        count = series_to_csv(_sample_series(), path)
        assert count == 4
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["algorithm"] == "exactsim"
        assert float(rows[1]["max_error"]) == pytest.approx(1e-3)

    def test_custom_columns(self, tmp_path):
        path = tmp_path / "narrow.csv"
        series_to_csv(_sample_series(), path, columns=["algorithm", "max_error"])
        header = path.read_text().splitlines()[0]
        assert header == "algorithm,max_error"

    def test_empty_series(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert series_to_csv([], path) == 0
        assert path.read_text().startswith("dataset,")


class TestAsciiScatter:
    def test_contains_markers_and_legend(self):
        plot = ascii_scatter(_sample_series(), title="Figure 1 (GQ)")
        assert "Figure 1 (GQ)" in plot
        assert "legend:" in plot
        assert "o=exactsim" in plot and "x=mc" in plot
        # Both series' markers appear somewhere in the grid.
        assert "o" in plot and "x" in plot

    def test_axis_ranges_reported(self):
        plot = ascii_scatter(_sample_series())
        assert "query_seconds" in plot and "max_error" in plot
        assert "log scale" in plot

    def test_skips_non_positive_values(self):
        series = Series(algorithm="zero", dataset="d", points=[
            SweepPoint(1.0, 0.0, 0.0, 0, 0.0, 0.0, 1)])
        plot = ascii_scatter([series])
        assert "(no plottable points)" in plot

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ascii_scatter(_sample_series(), width=5)

    def test_custom_fields(self):
        plot = ascii_scatter(_sample_series(), x_field="index_bytes",
                             y_field="precision_at_k")
        assert "index_bytes" in plot and "precision_at_k" in plot
