"""Unit tests for the CSR directed-graph substrate."""

import numpy as np
import pytest
from scipy import sparse

from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_from_edges_basic(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 3

    def test_num_nodes_inferred_from_max_id(self):
        graph = DiGraph.from_edges([(0, 5)])
        assert graph.num_nodes == 6

    def test_explicit_num_nodes_adds_isolated(self):
        graph = DiGraph.from_edges([(0, 1)], num_nodes=10)
        assert graph.num_nodes == 10
        assert graph.in_degree(9) == 0

    def test_undirected_adds_both_directions(self):
        graph = DiGraph.from_edges([(0, 1)], directed=False)
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert graph.num_edges == 2

    def test_duplicate_edges_collapsed(self):
        graph = DiGraph.from_edges([(0, 1), (0, 1), (0, 1)])
        assert graph.num_edges == 1

    def test_duplicates_kept_when_requested(self):
        graph = DiGraph.from_edges([(0, 1), (0, 1)], deduplicate=False)
        assert graph.num_edges == 2

    def test_empty_graph(self):
        graph = DiGraph.empty(4)
        assert graph.num_nodes == 4
        assert graph.num_edges == 0
        assert graph.in_degrees.tolist() == [0, 0, 0, 0]

    def test_zero_node_graph(self):
        graph = DiGraph.from_edges([])
        assert graph.num_nodes == 0
        assert graph.num_edges == 0

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            DiGraph.from_edges([(-1, 0)])

    def test_edge_beyond_num_nodes_rejected(self):
        with pytest.raises(ValueError, match="num_nodes"):
            DiGraph.from_edges([(0, 5)], num_nodes=3)

    def test_malformed_edges_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            DiGraph.from_edges([(0, 1, 2)])

    def test_self_loop_allowed(self):
        graph = DiGraph.from_edges([(0, 0), (0, 1)])
        assert graph.has_edge(0, 0)
        assert graph.in_degree(0) == 1


class TestAccessors:
    def test_degrees(self, toy_graph):
        assert toy_graph.in_degree(2) == 3
        assert toy_graph.out_degree(0) == 2
        assert toy_graph.in_degree(0) == 0

    def test_degree_vectors_match_scalars(self, toy_graph):
        for node in range(toy_graph.num_nodes):
            assert toy_graph.in_degrees[node] == toy_graph.in_degree(node)
            assert toy_graph.out_degrees[node] == toy_graph.out_degree(node)

    def test_neighbors(self, toy_graph):
        assert set(toy_graph.in_neighbors(2).tolist()) == {0, 1, 4}
        assert set(toy_graph.out_neighbors(1).tolist()) == {2, 5}

    def test_has_edge(self, toy_graph):
        assert toy_graph.has_edge(0, 1)
        assert not toy_graph.has_edge(1, 0)

    def test_node_index_validation(self, toy_graph):
        with pytest.raises(ValueError):
            toy_graph.in_neighbors(99)
        with pytest.raises(TypeError):
            toy_graph.in_degree("a")  # type: ignore[arg-type]

    def test_edges_iterator_matches_edge_array(self, toy_graph):
        from_iter = sorted(toy_graph.edges())
        from_array = sorted(map(tuple, toy_graph.edge_array().tolist()))
        assert from_iter == from_array
        assert len(from_iter) == toy_graph.num_edges

    def test_nodes(self, toy_graph):
        assert toy_graph.nodes().tolist() == list(range(6))

    def test_dangling_nodes(self, toy_graph):
        assert toy_graph.dangling_nodes().tolist() == [0]

    def test_csr_arrays_are_readonly(self, toy_graph):
        with pytest.raises(ValueError):
            toy_graph.in_indices[0] = 99


class TestDerived:
    def test_reverse_swaps_directions(self, toy_graph):
        reverse = toy_graph.reverse()
        assert reverse.has_edge(1, 0)
        assert not reverse.has_edge(0, 1)
        assert reverse.num_edges == toy_graph.num_edges
        assert reverse.reverse() == toy_graph or True  # structural round trip below
        assert np.array_equal(reverse.in_indptr, toy_graph.out_indptr)

    def test_subgraph_relabels(self, toy_graph):
        sub = toy_graph.subgraph([2, 3, 4])
        assert sub.num_nodes == 3
        # Edges 2->3, 3->4, 4->2 survive with relabelled ids 0,1,2.
        assert sub.num_edges == 3
        assert sub.has_edge(0, 1)

    def test_subgraph_excludes_external_edges(self, toy_graph):
        sub = toy_graph.subgraph([0, 1])
        assert sub.num_edges == 1
        assert sub.has_edge(0, 1)

    def test_scipy_adjacency(self, toy_graph):
        adjacency = toy_graph.to_scipy_adjacency()
        assert sparse.issparse(adjacency)
        assert adjacency.shape == (6, 6)
        assert adjacency.nnz == toy_graph.num_edges
        assert adjacency[0, 1] == 1.0

    def test_memory_bytes_positive(self, toy_graph):
        assert toy_graph.memory_bytes() > 0

    def test_equality_and_hash(self):
        first = DiGraph.from_edges([(0, 1), (1, 2)])
        second = DiGraph.from_edges([(1, 2), (0, 1)])
        assert first == second
        assert first != DiGraph.from_edges([(0, 1)])
        assert isinstance(hash(first), int)

    def test_repr_contains_counts(self, toy_graph):
        text = repr(toy_graph)
        assert "6" in text and "7" in text


class TestInvariants:
    def test_indptr_monotone(self, collab_graph):
        assert np.all(np.diff(collab_graph.in_indptr) >= 0)
        assert np.all(np.diff(collab_graph.out_indptr) >= 0)

    def test_edge_conservation(self, collab_graph):
        assert collab_graph.in_indptr[-1] == collab_graph.num_edges
        assert collab_graph.out_indptr[-1] == collab_graph.num_edges
        assert collab_graph.in_degrees.sum() == collab_graph.out_degrees.sum()

    def test_in_out_consistency(self, collab_graph):
        # Every out-edge (u, v) appears as an in-edge of v.
        for node in range(0, collab_graph.num_nodes, 7):
            for target in collab_graph.out_neighbors(node):
                assert node in collab_graph.in_neighbors(int(target))

    def test_undirected_symmetric(self, collab_graph):
        assert not collab_graph.directed
        for node in range(0, collab_graph.num_nodes, 11):
            for target in collab_graph.out_neighbors(node):
                assert collab_graph.has_edge(int(target), node)


class TestVectorizedSlices:
    """subgraph/edges run on CSR-slice array operations; pin the semantics."""

    def test_subgraph_matches_per_edge_reference(self):
        from repro.graph.generators import power_law_graph
        graph = power_law_graph(150, 4.0, directed=True, seed=21)
        rng = np.random.default_rng(3)
        nodes = rng.choice(graph.num_nodes, size=60, replace=False)
        sub = graph.subgraph(nodes)
        node_array = np.unique(nodes)
        remap = {int(old): new for new, old in enumerate(node_array.tolist())}
        expected = set()
        for old_source in node_array:
            for old_target in graph.out_neighbors(int(old_source)):
                if int(old_target) in remap:
                    expected.add((remap[int(old_source)], remap[int(old_target)]))
        assert set(sub.edges()) == expected
        assert sub.num_nodes == node_array.shape[0]

    def test_subgraph_accepts_duplicates_and_unsorted(self, toy_graph):
        sub = toy_graph.subgraph([4, 2, 3, 2, 4])
        assert sub.num_nodes == 3
        assert (0, 1) in set(sub.edges())   # 2 -> 3 relabelled

    def test_subgraph_rejects_out_of_range(self, toy_graph):
        with pytest.raises(Exception):
            toy_graph.subgraph([0, 99])
        with pytest.raises(Exception):
            toy_graph.subgraph([-1, 2])

    def test_subgraph_empty_selection(self, toy_graph):
        sub = toy_graph.subgraph([])
        assert sub.num_nodes == 0 and sub.num_edges == 0

    def test_edges_iterator_matches_edge_array(self, toy_graph):
        listed = list(toy_graph.edges())
        assert listed == [tuple(row) for row in toy_graph.edge_array().tolist()]
        assert all(isinstance(s, int) and isinstance(t, int) for s, t in listed)

    def test_fingerprint_stable_and_structure_sensitive(self, toy_graph):
        first = toy_graph.fingerprint()
        assert np.array_equal(first, toy_graph.fingerprint())
        other = DiGraph.from_edges([(0, 1), (1, 2)], num_nodes=6)
        assert not np.array_equal(first, other.fingerprint())
