"""Tests for the adaptive top-k query strategy."""

import numpy as np
import pytest

from repro.core.config import ExactSimConfig
from repro.core.topk import AdaptiveTopKResult, adaptive_top_k
from repro.metrics.accuracy import top_k_nodes

DECAY = 0.6
BASE = ExactSimConfig(decay=DECAY, seed=7, max_total_samples=60_000)


class TestAdaptiveTopK:
    def test_converges_and_matches_ground_truth(self, collab_graph, collab_simrank):
        source = 9
        result = adaptive_top_k(collab_graph, source, k=10, initial_epsilon=1e-1,
                                min_epsilon=1e-3, base_config=BASE)
        assert isinstance(result, AdaptiveTopKResult)
        assert result.converged
        truth = set(top_k_nodes(collab_simrank[source], 10, exclude=source).tolist())
        assert result.top_k.node_set() == truth

    def test_epsilon_schedule_is_decreasing(self, collab_graph):
        result = adaptive_top_k(collab_graph, 3, k=5, initial_epsilon=1e-1,
                                refinement_factor=5.0, min_epsilon=1e-3, base_config=BASE)
        assert all(earlier > later for earlier, later
                   in zip(result.epsilons, result.epsilons[1:]))
        assert result.final_epsilon >= 1e-3
        assert result.refinement_rounds == len(result.epsilons)

    def test_min_epsilon_floor_terminates_without_convergence_flag(self, collab_graph):
        # With stable_rounds impossible to reach in one step, the loop must
        # still terminate at the epsilon floor.
        result = adaptive_top_k(collab_graph, 3, k=5, initial_epsilon=1e-1,
                                refinement_factor=100.0, min_epsilon=5e-2,
                                stable_rounds=50, base_config=BASE)
        assert not result.converged
        assert result.final_epsilon == pytest.approx(5e-2)

    def test_total_time_accumulates(self, collab_graph):
        result = adaptive_top_k(collab_graph, 3, k=5, initial_epsilon=1e-1,
                                min_epsilon=1e-2, base_config=BASE)
        assert result.total_query_seconds > 0.0

    def test_require_same_order(self, collab_graph):
        result = adaptive_top_k(collab_graph, 9, k=5, initial_epsilon=1e-2,
                                min_epsilon=1e-3, require_same_order=True,
                                base_config=BASE)
        assert result.top_k.k == 5

    def test_parameter_validation(self, collab_graph):
        with pytest.raises(ValueError):
            adaptive_top_k(collab_graph, 0, k=0)
        with pytest.raises(ValueError):
            adaptive_top_k(collab_graph, 0, k=5, refinement_factor=1.0)
        with pytest.raises(ValueError):
            adaptive_top_k(collab_graph, 0, k=5, stable_rounds=0)
        with pytest.raises(ValueError):
            adaptive_top_k(collab_graph, collab_graph.num_nodes, k=5)
