"""Shared fixtures: small graphs with precomputed ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.power_method import simrank_matrix
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    power_law_graph,
    preferential_attachment_graph,
    ring_graph,
    star_graph,
)

DECAY = 0.6


@pytest.fixture(scope="session")
def toy_graph() -> DiGraph:
    """A tiny hand-made directed graph with varied in-degrees (6 nodes).

    Structure (edges point source -> target):
        0 -> 1, 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 4, 4 -> 2, 1 -> 5
    Node 0 has no in-neighbour (dangling for √c-walks); node 2 has three.
    """
    edges = [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 2), (1, 5)]
    return DiGraph.from_edges(edges, num_nodes=6, name="toy")


@pytest.fixture(scope="session")
def collab_graph() -> DiGraph:
    """A small undirected collaboration-style graph (scale-free, 120 nodes)."""
    return preferential_attachment_graph(120, 3, directed=False, seed=11)


@pytest.fixture(scope="session")
def directed_graph() -> DiGraph:
    """A small directed power-law graph (100 nodes)."""
    return power_law_graph(100, 5.0, exponent=2.1, directed=True, seed=13)


@pytest.fixture(scope="session")
def cycle_graph() -> DiGraph:
    return ring_graph(8, directed=True)


@pytest.fixture(scope="session")
def hub_graph() -> DiGraph:
    return star_graph(10, inward=True)


@pytest.fixture(scope="session")
def toy_simrank(toy_graph) -> np.ndarray:
    return simrank_matrix(toy_graph, decay=DECAY)


@pytest.fixture(scope="session")
def collab_simrank(collab_graph) -> np.ndarray:
    return simrank_matrix(collab_graph, decay=DECAY)


@pytest.fixture(scope="session")
def directed_simrank(directed_graph) -> np.ndarray:
    return simrank_matrix(directed_graph, decay=DECAY)
