"""Unit tests for ExactSimConfig, sampling allocation and sparse helpers."""

import numpy as np
import pytest

from repro.core.config import EPSILON_EXACT, ExactSimConfig
from repro.core.sampling import (
    allocate_proportional,
    allocate_squared,
    check_allocation,
    total_sample_budget,
)
from repro.core.sparse import (
    max_surviving_entries,
    sparse_truncation_threshold,
    sparsify_vector,
)

DECAY = 0.6
SQRT_C = np.sqrt(DECAY)


class TestConfig:
    def test_defaults_are_optimized(self):
        config = ExactSimConfig()
        assert config.optimized
        assert config.use_sparse_linearization
        assert config.use_squared_sampling
        assert config.use_local_exploitation

    def test_basic_constructor(self):
        config = ExactSimConfig.basic(epsilon=1e-3)
        assert not config.optimized
        assert config.epsilon == 1e-3

    def test_epsilon_exact_constant(self):
        assert EPSILON_EXACT == 1e-7

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            ExactSimConfig(epsilon=0.0)

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            ExactSimConfig(decay=1.0)

    def test_invalid_caps(self):
        with pytest.raises(ValueError):
            ExactSimConfig(max_total_samples=0)
        with pytest.raises(ValueError):
            ExactSimConfig(max_walk_steps=0)
        with pytest.raises(ValueError):
            ExactSimConfig(max_exploit_level=0)

    def test_num_iterations_formula(self):
        config = ExactSimConfig(epsilon=1e-4, use_sparse_linearization=False)
        expected = int(np.ceil(np.log(2.0 / 1e-4) / np.log(1.0 / DECAY)))
        assert config.num_iterations() == expected

    def test_effective_epsilon_halved_with_sparse(self):
        sparse_config = ExactSimConfig(epsilon=1e-3, use_sparse_linearization=True)
        dense_config = ExactSimConfig(epsilon=1e-3, use_sparse_linearization=False)
        assert sparse_config.effective_epsilon == pytest.approx(5e-4)
        assert dense_config.effective_epsilon == pytest.approx(1e-3)
        assert sparse_config.num_iterations() >= dense_config.num_iterations()

    def test_truncation_threshold(self):
        config = ExactSimConfig(epsilon=1e-3)
        expected = (1.0 - SQRT_C) ** 2 * 5e-4
        assert config.truncation_threshold() == pytest.approx(expected)
        assert ExactSimConfig(epsilon=1e-3,
                              use_sparse_linearization=False).truncation_threshold() is None

    def test_with_epsilon_and_seed_are_copies(self):
        config = ExactSimConfig(epsilon=1e-2, seed=1)
        other = config.with_epsilon(1e-3).with_seed(9)
        assert other.epsilon == 1e-3 and other.seed == 9
        assert config.epsilon == 1e-2 and config.seed == 1

    def test_frozen(self):
        config = ExactSimConfig()
        with pytest.raises(Exception):
            config.epsilon = 0.5  # type: ignore[misc]


class TestSampleBudget:
    def test_formula(self):
        budget = total_sample_budget(1000, 1e-2, decay=DECAY, failure_constant=6.0)
        expected = 6.0 * np.log(1000) / ((1.0 - SQRT_C) ** 4 * 1e-4)
        assert budget == int(np.ceil(expected))

    def test_budget_grows_with_precision(self):
        assert total_sample_budget(1000, 1e-3) > total_sample_budget(1000, 1e-2)

    def test_budget_grows_logarithmically_with_n(self):
        small = total_sample_budget(1_000, 1e-2)
        large = total_sample_budget(1_000_000, 1e-2)
        assert large < 3 * small

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            total_sample_budget(0, 1e-2)
        with pytest.raises(ValueError):
            total_sample_budget(10, 0.0)


class TestAllocation:
    def setup_method(self):
        rng = np.random.default_rng(1)
        raw = rng.random(50)
        self.ppr = raw / raw.sum()

    def test_proportional_covers_budget(self):
        allocation, realised = allocate_proportional(self.ppr, 10_000)
        assert realised >= 10_000               # ceilings only add samples
        assert realised == allocation.sum()
        assert np.all(allocation >= 0)

    def test_proportional_respects_zero_entries(self):
        ppr = self.ppr.copy()
        ppr[:10] = 0.0
        allocation, _ = allocate_proportional(ppr, 1_000)
        assert np.all(allocation[:10] == 0)

    def test_squared_total_is_roughly_budget_times_norm(self):
        budget = 100_000
        allocation, realised = allocate_squared(self.ppr, budget)
        norm = float(np.dot(self.ppr, self.ppr))
        assert realised == allocation.sum()
        assert realised <= budget * norm + self.ppr.size
        assert realised >= budget * norm

    def test_squared_allocates_fewer_samples_than_proportional(self):
        budget = 100_000
        _, realised_proportional = allocate_proportional(self.ppr, budget)
        _, realised_squared = allocate_squared(self.ppr, budget)
        assert realised_squared < realised_proportional

    def test_cap_is_respected(self):
        allocation, realised = allocate_proportional(self.ppr, 10_000_000, cap=5_000)
        # Every positive-PPR node keeps at least one sample, so the realised
        # total can exceed the cap only by the number of such nodes.
        assert realised <= 5_000 + np.count_nonzero(self.ppr)
        assert np.all(allocation[self.ppr > 0] >= 1)

    def test_cap_squared(self):
        allocation, realised = allocate_squared(self.ppr, 10_000_000, cap=5_000)
        assert realised <= 5_000 + np.count_nonzero(self.ppr)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            allocate_proportional(self.ppr, -1)
        with pytest.raises(ValueError):
            allocate_squared(self.ppr, -1)

    def test_check_allocation(self):
        checked = check_allocation(np.ones(50), 50)
        assert checked.dtype == np.int64
        with pytest.raises(ValueError):
            check_allocation(np.ones(49), 50)
        with pytest.raises(ValueError):
            check_allocation(-np.ones(50), 50)


class TestSparseHelpers:
    def test_threshold_formula(self):
        assert sparse_truncation_threshold(1e-3, decay=DECAY) == \
            pytest.approx((1.0 - SQRT_C) ** 2 * 1e-3)

    def test_sparsify_vector(self):
        vector = np.array([0.5, 1e-6, 0.2, 0.0])
        result = sparsify_vector(vector, 1e-3)
        assert result.tolist() == [0.5, 0.0, 0.2, 0.0]
        # Original untouched.
        assert vector[1] == 1e-6

    def test_max_surviving_entries_bound(self):
        epsilon = 1e-3
        bound = max_surviving_entries(epsilon, decay=DECAY)
        assert bound == int(np.ceil(1.0 / sparse_truncation_threshold(epsilon, decay=DECAY)))

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            sparse_truncation_threshold(0.0)
        with pytest.raises(ValueError):
            sparsify_vector(np.ones(3), 0.0)
