"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.generators import preferential_attachment_graph
from repro.graph.io import write_edge_list


class TestDatasetsCommand:
    def test_lists_all_datasets(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for key in ("GQ", "HT", "WV", "HP", "DB", "IC", "IT", "TW"):
            assert key in output


class TestQueryCommand:
    def test_query_on_registered_dataset(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "3",
                     "--epsilon", "1e-2", "--top-k", "5", "--seed", "1",
                     "--max-samples", "20000"])
        assert code == 0
        output = capsys.readouterr().out
        assert "exactsim" in output
        assert "simrank" in output

    def test_query_basic_variant(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "3", "--basic",
                     "--epsilon", "5e-2", "--seed", "1", "--max-samples", "10000"])
        assert code == 0
        assert "exactsim-basic" in capsys.readouterr().out

    def test_query_on_edge_list_file(self, tmp_path, capsys):
        graph = preferential_attachment_graph(60, 2, directed=False, seed=2)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        code = main(["query", "--edge-list", str(path), "--source", "0",
                     "--epsilon", "5e-2", "--seed", "1", "--max-samples", "10000"])
        assert code == 0

    def test_query_source_out_of_range(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "99999999",
                     "--epsilon", "1e-1"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_missing_required_arguments(self):
        with pytest.raises(SystemExit):
            main(["query", "--source", "0"])


class TestExperimentCommand:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "paper_n" in capsys.readouterr().out

    def test_fig1_small_run(self, capsys):
        code = main(["experiment", "fig1", "--dataset", "GQ", "--queries", "1",
                     "--top-k", "10"])
        assert code == 0
        output = capsys.readouterr().out
        assert "exactsim" in output and "max_error" in output

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig42"])
