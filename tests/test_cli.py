"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.generators import preferential_attachment_graph
from repro.graph.io import write_edge_list


class TestDatasetsCommand:
    def test_lists_all_datasets(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for key in ("GQ", "HT", "WV", "HP", "DB", "IC", "IT", "TW"):
            assert key in output


class TestQueryCommand:
    def test_query_on_registered_dataset(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "3",
                     "--epsilon", "1e-2", "--top-k", "5", "--seed", "1",
                     "--max-samples", "20000"])
        assert code == 0
        output = capsys.readouterr().out
        assert "exactsim" in output
        assert "simrank" in output

    def test_query_basic_variant(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "3", "--basic",
                     "--epsilon", "5e-2", "--seed", "1", "--max-samples", "10000"])
        assert code == 0
        assert "exactsim-basic" in capsys.readouterr().out

    def test_query_on_edge_list_file(self, tmp_path, capsys):
        graph = preferential_attachment_graph(60, 2, directed=False, seed=2)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        code = main(["query", "--edge-list", str(path), "--source", "0",
                     "--epsilon", "5e-2", "--seed", "1", "--max-samples", "10000"])
        assert code == 0

    def test_query_source_out_of_range(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "99999999",
                     "--epsilon", "1e-1"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_missing_required_arguments(self):
        with pytest.raises(SystemExit):
            main(["query", "--source", "0"])


class TestExperimentCommand:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "paper_n" in capsys.readouterr().out

    def test_fig1_small_run(self, capsys):
        code = main(["experiment", "fig1", "--dataset", "GQ", "--queries", "1",
                     "--top-k", "10"])
        assert code == 0
        output = capsys.readouterr().out
        assert "exactsim" in output and "max_error" in output

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig42"])


class TestMethodsCommand:
    def test_lists_registered_methods(self, capsys):
        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for name in ("exactsim", "prsim", "sling", "mc", "probesim"):
            assert name in output


class TestQueryMethodAndBatch:
    def test_query_every_registered_method(self, capsys):
        from repro.algorithms import registry
        for name in registry.available():
            code = main(["query", "--dataset", "GQ", "--source", "3",
                         "--method", name, "--epsilon", "1e-1", "--seed", "1",
                         "--max-samples", "5000", "--top-k", "2"])
            assert code == 0, name
            assert "simrank" in capsys.readouterr().out

    def test_batched_sources(self, capsys):
        code = main(["query", "--dataset", "GQ", "--sources", "3,7,11",
                     "--method", "parsim", "--top-k", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert output.count("# parsim on GQ") == 3

    def test_invalid_sources_string(self, capsys):
        code = main(["query", "--dataset", "GQ", "--sources", "3,x",
                     "--method", "parsim"])
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_method_specific_param(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "3",
                     "--method", "probesim", "--seed", "1",
                     "--param", "num_walks=50", "--top-k", "2"])
        assert code == 0


class TestIndexCommands:
    def test_build_then_load_and_query(self, tmp_path, capsys):
        code = main(["index", "build", "--dataset", "GQ", "--method", "mc",
                     "--seed", "2", "--param", "walks_per_node=10",
                     "--param", "walk_length=5",
                     "--out", str(tmp_path / "gq-mc.npz")])
        assert code == 0
        assert "mc index on GQ" in capsys.readouterr().out
        code = main(["index", "load", "--dataset", "GQ", "--method", "mc",
                     "--path", str(tmp_path / "gq-mc.npz"),
                     "--source", "3", "--top-k", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "loaded mc index" in output and "simrank" in output

    def test_build_rejects_index_free_method(self, capsys):
        code = main(["index", "build", "--dataset", "GQ", "--method", "parsim",
                     "--out", "unused.npz"])
        assert code == 2
        assert "persistence" in capsys.readouterr().err

    def test_load_rejects_wrong_method(self, tmp_path, capsys):
        assert main(["index", "build", "--dataset", "GQ", "--method", "mc",
                     "--seed", "1", "--param", "walks_per_node=5",
                     "--out", str(tmp_path / "mc.npz")]) == 0
        capsys.readouterr()
        code = main(["index", "load", "--dataset", "GQ", "--method", "sling",
                     "--path", str(tmp_path / "mc.npz")])
        assert code == 2
        assert "built by" in capsys.readouterr().err

    def test_query_with_index_dir_builds_then_loads(self, tmp_path, capsys):
        arguments = ["query", "--dataset", "GQ", "--source", "3",
                     "--method", "prsim", "--epsilon", "1e-1", "--seed", "1",
                     "--index-dir", str(tmp_path), "--top-k", "2"]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert "built prsim index" in first
        assert main(arguments) == 0
        second = capsys.readouterr().out
        assert "loaded prsim index" in second
        # identical scores from the persisted index
        assert first.splitlines()[-2:] == second.splitlines()[-2:]

    def test_query_index_dir_with_stale_index_fails_cleanly(self, tmp_path, capsys):
        base = ["query", "--dataset", "GQ", "--method", "mc", "--seed", "1",
                "--param", "walks_per_node=5", "--index-dir", str(tmp_path),
                "--top-k", "2"]
        assert main(base + ["--source", "3"]) == 0
        capsys.readouterr()
        # Same cache, different decay: load must fail with a clean error.
        code = main(base + ["--source", "3", "--decay", "0.8"])
        assert code == 2
        err = capsys.readouterr().err
        assert "decay" in err and "Traceback" not in err

    def test_index_build_rejects_unknown_param_cleanly(self, capsys):
        code = main(["index", "build", "--dataset", "GQ", "--method", "mc",
                     "--param", "bogus=1", "--out", "unused.npz"])
        assert code == 2
        assert "does not accept" in capsys.readouterr().err

    def test_index_load_rejects_unknown_param_cleanly(self, tmp_path, capsys):
        code = main(["index", "load", "--dataset", "GQ", "--method", "mc",
                     "--param", "bogus=1", "--path", str(tmp_path / "x.npz")])
        assert code == 2
        assert "does not accept" in capsys.readouterr().err


class TestAnswerCommand:
    @staticmethod
    def _write_queries(tmp_path, lines):
        path = tmp_path / "queries.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_answer_stream_all_query_types(self, tmp_path, capsys):
        import json

        path = self._write_queries(tmp_path, [
            '{"type": "single_source", "source": 3}',
            '{"type": "single_pair", "source": 3, "target": 7}',
            '{"type": "top_k", "source": 3, "k": 4}',
            '{"type": "single_pair", "source": 5, "target": 9, "method": "sling"}',
            '# a comment line is skipped',
            '{"type": "single_pair", "source": 3, "target": 7}',
        ])
        code = main(["answer", "--dataset", "GQ", "--method", "parsim",
                     "--queries", path, "--epsilon", "1e-1", "--seed", "1",
                     "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines() if line]
        assert len(lines) == 5
        assert lines[0]["type"] == "single_source" and lines[0]["route"] == "derived"
        assert lines[1]["type"] == "single_pair" and lines[1]["method"] == "parsim"
        assert lines[2]["type"] == "top_k" and len(lines[2]["nodes"]) == 4
        assert lines[3]["method"] == "sling" and lines[3]["route"] == "native"
        # The repeated pair of the same batch shares the coalesced vector;
        # its answer must equal the first occurrence's.
        assert lines[4]["score"] == lines[1]["score"]
        assert "serving stats" in captured.err

    def test_answer_repeat_batches_hit_the_cache(self, tmp_path, capsys):
        import json

        path = self._write_queries(tmp_path, [
            '{"type": "top_k", "source": 3, "k": 3}',
            '{"type": "top_k", "source": 3, "k": 3}',
        ])
        code = main(["answer", "--dataset", "GQ", "--method", "parsim",
                     "--queries", path, "--batch-size", "1"])
        assert code == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines[0]["route"] == "derived"
        assert lines[1]["route"] == "cached"
        assert lines[0]["nodes"] == lines[1]["nodes"]

    def test_answer_reports_bad_lines_and_continues(self, tmp_path, capsys):
        import json

        path = self._write_queries(tmp_path, [
            'not json at all',
            '{"type": "bogus", "source": 1}',
            '{"type": "single_pair", "source": 1, "target": 999999}',
            '{"type": "top_k", "source": 1, "k": 0}',
            '{"type": "top_k", "source": 1, "method": "no-such"}',
            '{"type": "single_pair", "source": 1, "target": 2}',
        ])
        code = main(["answer", "--dataset", "GQ", "--method", "parsim",
                     "--queries", path])
        assert code == 1                     # partial failure
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        # Output line N answers input line N: the five bad lines come out as
        # error objects in position, the valid pair last.
        assert ["error" in line for line in lines] == [True] * 5 + [False]
        assert lines[5]["type"] == "single_pair"

    def test_answer_rejects_bad_batch_size(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, ['{"type": "top_k", "source": 1}'])
        code = main(["answer", "--dataset", "GQ", "--queries", path,
                     "--batch-size", "0"])
        assert code == 2
        assert "batch-size" in capsys.readouterr().err
