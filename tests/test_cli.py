"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph.generators import preferential_attachment_graph
from repro.graph.io import write_edge_list


class TestDatasetsCommand:
    def test_lists_all_datasets(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for key in ("GQ", "HT", "WV", "HP", "DB", "IC", "IT", "TW"):
            assert key in output


class TestQueryCommand:
    def test_query_on_registered_dataset(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "3",
                     "--epsilon", "1e-2", "--top-k", "5", "--seed", "1",
                     "--max-samples", "20000"])
        assert code == 0
        output = capsys.readouterr().out
        assert "exactsim" in output
        assert "simrank" in output

    def test_query_basic_variant(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "3", "--basic",
                     "--epsilon", "5e-2", "--seed", "1", "--max-samples", "10000"])
        assert code == 0
        assert "exactsim-basic" in capsys.readouterr().out

    def test_query_on_edge_list_file(self, tmp_path, capsys):
        graph = preferential_attachment_graph(60, 2, directed=False, seed=2)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        code = main(["query", "--edge-list", str(path), "--source", "0",
                     "--epsilon", "5e-2", "--seed", "1", "--max-samples", "10000"])
        assert code == 0

    def test_query_source_out_of_range(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "99999999",
                     "--epsilon", "1e-1"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err

    def test_missing_required_arguments(self):
        with pytest.raises(SystemExit):
            main(["query", "--source", "0"])


class TestExperimentCommand:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "paper_n" in capsys.readouterr().out

    def test_fig1_small_run(self, capsys):
        code = main(["experiment", "fig1", "--dataset", "GQ", "--queries", "1",
                     "--top-k", "10"])
        assert code == 0
        output = capsys.readouterr().out
        assert "exactsim" in output and "max_error" in output

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig42"])


class TestMethodsCommand:
    def test_lists_registered_methods(self, capsys):
        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for name in ("exactsim", "prsim", "sling", "mc", "probesim"):
            assert name in output


class TestQueryMethodAndBatch:
    def test_query_every_registered_method(self, capsys):
        from repro.algorithms import registry
        for name in registry.available():
            code = main(["query", "--dataset", "GQ", "--source", "3",
                         "--method", name, "--epsilon", "1e-1", "--seed", "1",
                         "--max-samples", "5000", "--top-k", "2"])
            assert code == 0, name
            assert "simrank" in capsys.readouterr().out

    def test_batched_sources(self, capsys):
        code = main(["query", "--dataset", "GQ", "--sources", "3,7,11",
                     "--method", "parsim", "--top-k", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert output.count("# parsim on GQ") == 3

    def test_invalid_sources_string(self, capsys):
        code = main(["query", "--dataset", "GQ", "--sources", "3,x",
                     "--method", "parsim"])
        assert code == 2
        assert "comma-separated" in capsys.readouterr().err

    def test_method_specific_param(self, capsys):
        code = main(["query", "--dataset", "GQ", "--source", "3",
                     "--method", "probesim", "--seed", "1",
                     "--param", "num_walks=50", "--top-k", "2"])
        assert code == 0


class TestIndexCommands:
    def test_build_then_load_and_query(self, tmp_path, capsys):
        code = main(["index", "build", "--dataset", "GQ", "--method", "mc",
                     "--seed", "2", "--param", "walks_per_node=10",
                     "--param", "walk_length=5",
                     "--out", str(tmp_path / "gq-mc.npz")])
        assert code == 0
        assert "mc index on GQ" in capsys.readouterr().out
        code = main(["index", "load", "--dataset", "GQ", "--method", "mc",
                     "--path", str(tmp_path / "gq-mc.npz"),
                     "--source", "3", "--top-k", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "loaded mc index" in output and "simrank" in output

    def test_build_rejects_index_free_method(self, capsys):
        code = main(["index", "build", "--dataset", "GQ", "--method", "parsim",
                     "--out", "unused.npz"])
        assert code == 2
        assert "persistence" in capsys.readouterr().err

    def test_load_rejects_wrong_method(self, tmp_path, capsys):
        assert main(["index", "build", "--dataset", "GQ", "--method", "mc",
                     "--seed", "1", "--param", "walks_per_node=5",
                     "--out", str(tmp_path / "mc.npz")]) == 0
        capsys.readouterr()
        code = main(["index", "load", "--dataset", "GQ", "--method", "sling",
                     "--path", str(tmp_path / "mc.npz")])
        assert code == 2
        assert "built by" in capsys.readouterr().err

    def test_query_with_index_dir_builds_then_loads(self, tmp_path, capsys):
        arguments = ["query", "--dataset", "GQ", "--source", "3",
                     "--method", "prsim", "--epsilon", "1e-1", "--seed", "1",
                     "--index-dir", str(tmp_path), "--top-k", "2"]
        assert main(arguments) == 0
        first = capsys.readouterr().out
        assert "built prsim index" in first
        assert main(arguments) == 0
        second = capsys.readouterr().out
        assert "loaded prsim index" in second
        # identical scores from the persisted index
        assert first.splitlines()[-2:] == second.splitlines()[-2:]

    def test_query_index_dir_with_stale_index_fails_cleanly(self, tmp_path, capsys):
        base = ["query", "--dataset", "GQ", "--method", "mc", "--seed", "1",
                "--param", "walks_per_node=5", "--index-dir", str(tmp_path),
                "--top-k", "2"]
        assert main(base + ["--source", "3"]) == 0
        capsys.readouterr()
        # Same cache, different decay: load must fail with a clean error.
        code = main(base + ["--source", "3", "--decay", "0.8"])
        assert code == 2
        err = capsys.readouterr().err
        assert "decay" in err and "Traceback" not in err

    def test_index_build_rejects_unknown_param_cleanly(self, capsys):
        code = main(["index", "build", "--dataset", "GQ", "--method", "mc",
                     "--param", "bogus=1", "--out", "unused.npz"])
        assert code == 2
        assert "does not accept" in capsys.readouterr().err

    def test_index_load_rejects_unknown_param_cleanly(self, tmp_path, capsys):
        code = main(["index", "load", "--dataset", "GQ", "--method", "mc",
                     "--param", "bogus=1", "--path", str(tmp_path / "x.npz")])
        assert code == 2
        assert "does not accept" in capsys.readouterr().err


class TestAnswerCommand:
    @staticmethod
    def _write_queries(tmp_path, lines):
        path = tmp_path / "queries.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_answer_stream_all_query_types(self, tmp_path, capsys):
        import json

        path = self._write_queries(tmp_path, [
            '{"type": "single_source", "source": 3}',
            '{"type": "single_pair", "source": 3, "target": 7}',
            '{"type": "top_k", "source": 3, "k": 4}',
            '{"type": "single_pair", "source": 5, "target": 9, "method": "sling"}',
            '# a comment line is skipped',
            '{"type": "single_pair", "source": 3, "target": 7}',
        ])
        code = main(["answer", "--dataset", "GQ", "--method", "parsim",
                     "--queries", path, "--epsilon", "1e-1", "--seed", "1",
                     "--stats"])
        assert code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines() if line]
        assert len(lines) == 5
        assert lines[0]["type"] == "single_source" and lines[0]["route"] == "derived"
        assert lines[1]["type"] == "single_pair" and lines[1]["method"] == "parsim"
        assert lines[2]["type"] == "top_k" and len(lines[2]["nodes"]) == 4
        assert lines[3]["method"] == "sling" and lines[3]["route"] == "native"
        # The repeated pair of the same batch shares the coalesced vector;
        # its answer must equal the first occurrence's.
        assert lines[4]["score"] == lines[1]["score"]
        assert "serving stats" in captured.err

    def test_answer_repeat_batches_hit_the_cache(self, tmp_path, capsys):
        import json

        path = self._write_queries(tmp_path, [
            '{"type": "top_k", "source": 3, "k": 3}',
            '{"type": "top_k", "source": 3, "k": 3}',
        ])
        code = main(["answer", "--dataset", "GQ", "--method", "parsim",
                     "--queries", path, "--batch-size", "1"])
        assert code == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        assert lines[0]["route"] == "derived"
        assert lines[1]["route"] == "cached"
        assert lines[0]["nodes"] == lines[1]["nodes"]

    def test_answer_reports_bad_lines_and_continues(self, tmp_path, capsys):
        import json

        path = self._write_queries(tmp_path, [
            'not json at all',
            '{"type": "bogus", "source": 1}',
            '{"type": "single_pair", "source": 1, "target": 999999}',
            '{"type": "top_k", "source": 1, "k": 0}',
            '{"type": "top_k", "source": 1, "method": "no-such"}',
            '{"type": "single_pair", "source": 1, "target": 2}',
        ])
        code = main(["answer", "--dataset", "GQ", "--method", "parsim",
                     "--queries", path])
        assert code == 1                     # partial failure
        lines = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
        # Output line N answers input line N: the five bad lines come out as
        # error objects in position, the valid pair last.
        assert ["error" in line for line in lines] == [True] * 5 + [False]
        assert lines[5]["type"] == "single_pair"

    def test_answer_rejects_bad_batch_size(self, capsys, tmp_path):
        path = self._write_queries(tmp_path, ['{"type": "top_k", "source": 1}'])
        code = main(["answer", "--dataset", "GQ", "--queries", path,
                     "--batch-size", "0"])
        assert code == 2
        assert "batch-size" in capsys.readouterr().err


class TestAnswerPoolMode:
    @staticmethod
    def _write_queries(tmp_path, lines):
        path = tmp_path / "queries.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_pool_mode_serves_stream_in_order(self, tmp_path, capsys):
        import json

        lines = ['{"type": "single_pair", "source": %d, "target": %d}'
                 % (i % 9, (i * 3) % 9) for i in range(24)]
        lines.insert(5, "not json")
        path = self._write_queries(tmp_path, lines)
        code = main(["answer", "--dataset", "GQ", "--method", "parsim",
                     "--queries", path, "--workers", "2", "--batch-size", "4",
                     "--stats"])
        captured = capsys.readouterr()
        out = [json.loads(line) for line in captured.out.splitlines() if line]
        assert code == 1                     # the bad line is a failure
        assert len(out) == len(lines)        # one response per input line
        assert out[5]["code"] == "parse_error"
        assert all("score" in line for line in out[:5] + out[6:])
        stats = json.loads(captured.err.split("# serving stats: ", 1)[1])
        assert stats["mode"] == "pool"
        assert stats["frontend"]["accepted"] == len(lines) - 1
        assert stats["workers"]["alive"] == 0          # drained and reaped
        assert stats["workers"]["num_workers"] == 2

    def test_pool_chaos_kill_loses_no_lines(self, tmp_path, capsys):
        import json

        lines = ['{"type": "top_k", "source": %d, "k": 5}' % (i % 11)
                 for i in range(60)]
        path = self._write_queries(tmp_path, lines)
        code = main(["answer", "--dataset", "GQ", "--method", "parsim",
                     "--queries", path, "--workers", "3", "--batch-size", "4",
                     "--chaos-kill-every", "15", "--stats"])
        captured = capsys.readouterr()
        out = [json.loads(line) for line in captured.out.splitlines() if line]
        assert code == 0
        assert len(out) == len(lines)
        assert all("error" not in line for line in out)
        stats = json.loads(captured.err.split("# serving stats: ", 1)[1])
        assert stats["chaos_kills"] >= 1
        assert stats["workers"]["deaths"] >= 1

    def test_pool_rejects_bad_flags(self, tmp_path, capsys):
        path = self._write_queries(tmp_path, ['{"type": "top_k", "source": 1}'])
        code = main(["answer", "--dataset", "GQ", "--queries", path,
                     "--workers", "2", "--max-inflight", "0"])
        assert code == 2
        assert "max-inflight" in capsys.readouterr().err


class TestGracefulShutdown:
    """Signal/broken-pipe shutdown needs real processes, not capsys."""

    @staticmethod
    def _spawn(extra_args, tmp_path=None, queries="-"):
        import os
        import subprocess
        import sys

        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "answer", "--dataset", "GQ",
             "--method", "parsim", "--param", "iterations=5",
             "--queries", queries, "--stats"] + extra_args,
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, cwd="/root/repo", env=env)

    def test_sigterm_drains_single_process_loop(self):
        import signal

        proc = self._spawn(["--batch-size", "1"])
        try:
            proc.stdin.write('{"type": "single_pair", "source": 1, "target": 2}\n')
            proc.stdin.flush()
            first = proc.stdout.readline()
            assert '"score"' in first
            proc.send_signal(signal.SIGTERM)
            # The line in flight when the signal lands is still answered.
            proc.stdin.write('{"type": "single_pair", "source": 2, "target": 3}\n')
            proc.stdin.flush()
            out, err = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0          # a stopped server did not fail
        assert "serving stats" in err

    def test_sigterm_drains_worker_pool(self):
        import signal
        import time

        proc = self._spawn(["--workers", "2", "--batch-size", "2"])
        try:
            for i in range(4):
                proc.stdin.write(
                    '{"type": "single_pair", "source": %d, "target": %d}\n'
                    % (i, i + 1))
            proc.stdin.flush()
            assert '"score"' in proc.stdout.readline()
            proc.send_signal(signal.SIGTERM)
            time.sleep(0.2)
            out, err = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0
        assert "serving stats" in err        # final record still emitted

    def test_broken_pipe_exits_zero_with_stats(self, tmp_path):
        import subprocess
        import sys
        import os

        lines = "\n".join('{"type": "single_pair", "source": %d, "target": %d}'
                          % (i % 7, (i + 1) % 7) for i in range(1500))
        queries = tmp_path / "queries.jsonl"
        queries.write_text(lines + "\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        # head(1) hangs up after two lines; >64 KiB of cached answers then
        # overflow the dead pipe mid-stream -> BrokenPipeError in the loop.
        command = (f"{sys.executable} -m repro.cli answer --dataset GQ "
                   f"--method parsim --param iterations=5 "
                   f"--queries {queries} --stats | head -n 2 > /dev/null; "
                   f'exit "${{PIPESTATUS[0]}}"')
        completed = subprocess.run(["bash", "-c", command], cwd="/root/repo",
                                   env=env, capture_output=True, text=True,
                                   timeout=120)
        assert completed.returncode == 0     # hang-up is a drain, not a crash
        assert "serving stats" in completed.stderr
