"""Thread-invariance and multicore-substrate tests (PR 10).

The determinism contract under test, in three tiers:

1. **Bit-identical regardless of thread count** — dense-lane spmm
   (column blocking) and the stacked COO advance (lane blocking) must
   produce the same bits at 1, 2 and 4 threads, because blocking never
   changes any per-element summation order.
2. **Deterministic given (seed, shard count)** — sharded walk advancement
   draws from ``rng.spawn`` child streams: a different (exchangeable)
   sample than the serial stream, but exactly reproducible.
3. **Serial below threshold** — every tier-1 test graph sits under
   ``SHARD_MIN_STATES``, so the auto path must keep the pinned serial
   stream bit-for-bit.

Plus the pool-level machinery the substrate feeds: the shared-memory graph
segment lifecycle (adopt, destroy, no leak across chaos kills), respawn
prewarming, and restart-after-WAL-compaction recovery.
"""

import asyncio
import os
import signal

import numpy as np
import pytest

from repro.graph.context import GraphContext
from repro.graph.digraph import DiGraph
from repro.graph.updates import (
    EdgeBatch,
    GraphCheckpoint,
    UpdateLog,
    WalCorruptionError,
)
from repro.kernels import parallel
from repro.kernels.multiprop import DenseLanePropagation, MultiPropagation
from repro.randomwalk.aggregate import (
    SHARD_MIN_STATES,
    advance_frontier,
    walk_shards,
)

THREAD_COUNTS = (1, 2, 4)


@pytest.fixture
def random_graph():
    rng = np.random.default_rng(42)
    edges = rng.integers(0, 300, size=(1500, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    return DiGraph.from_edges(edges, 300, name="par-test")


@pytest.fixture
def forced_parallel(monkeypatch):
    """Drop the work threshold so even tiny fixtures take the blocked path."""
    monkeypatch.setattr(parallel, "MIN_PARALLEL_WORK", 1)


# --------------------------------------------------------------------------- #
# thread-count plumbing
# --------------------------------------------------------------------------- #
def test_env_var_sets_default(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_THREADS", "3")
    assert parallel.default_num_threads() == 3


def test_env_var_garbage_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_NUM_THREADS", "not-a-number")
    assert parallel.default_num_threads() >= 1


def test_set_get_num_threads():
    saved = parallel.get_num_threads()
    try:
        parallel.set_num_threads(2)
        assert parallel.get_num_threads() == 2
        parallel.set_num_threads(0)                 # clamps to 1
        assert parallel.get_num_threads() == 1
    finally:
        parallel.set_num_threads(saved)


def test_column_blocks_cover_and_partition():
    blocks = parallel.column_blocks(17, threads=4)
    assert blocks[0][0] == 0 and blocks[-1][1] == 17
    for (_, hi), (lo, _) in zip(blocks, blocks[1:]):
        assert hi == lo


def test_lane_entry_blocks_align_to_lanes():
    rows = np.repeat(np.arange(6, dtype=np.int64), [5, 1, 9, 2, 7, 3])
    blocks = parallel.lane_entry_blocks(rows, 6, threads=3, min_entries=1)
    assert blocks[0][0] == 0 and blocks[-1][1] == rows.size
    for lo, hi in blocks:
        if lo > 0:
            assert rows[lo] != rows[lo - 1]     # never splits inside a lane
        if hi < rows.size:
            assert rows[hi] != rows[hi - 1]


# --------------------------------------------------------------------------- #
# tier 1: bit-identical at every thread count
# --------------------------------------------------------------------------- #
def test_parallel_spmm_bit_identical(random_graph, forced_parallel):
    matrix = GraphContext.shared(random_graph).operator(0.6).matrix
    rng = np.random.default_rng(0)
    dense = rng.random((random_graph.num_nodes, 32))
    serial = matrix @ dense
    for threads in THREAD_COUNTS:
        out = parallel.parallel_spmm(matrix, dense, threads=threads)
        assert np.array_equal(out, serial)


def test_parallel_spmm_single_column_and_vector(random_graph):
    matrix = GraphContext.shared(random_graph).operator(0.6).matrix
    vector = np.random.default_rng(1).random(random_graph.num_nodes)
    assert np.array_equal(parallel.parallel_spmm(matrix, vector, threads=4),
                          matrix @ vector)
    column = vector.reshape(-1, 1)
    assert np.array_equal(parallel.parallel_spmm(matrix, column, threads=4),
                          matrix @ column)


def test_dense_lane_propagation_thread_invariant(random_graph,
                                                 forced_parallel):
    operator = GraphContext.shared(random_graph).operator(0.6)
    sources = np.arange(16, dtype=np.int64)
    states = {}
    for threads in THREAD_COUNTS:
        parallel.set_num_threads(threads)
        try:
            prop = DenseLanePropagation.forward(random_graph, sources.size,
                                                operator)
            prop.seed_units(sources)
            for _ in range(4):
                prop.step(scale=float(np.sqrt(0.6)))
            states[threads] = prop.snapshot()
        finally:
            parallel.set_num_threads(parallel.default_num_threads())
    for threads in THREAD_COUNTS[1:]:
        for a, b in zip(states[threads], states[1]):
            assert np.array_equal(a, b)


@pytest.mark.parametrize("transpose", [False, True])
def test_multiprop_advance_thread_invariant(random_graph, forced_parallel,
                                            transpose):
    sources = np.argsort(-random_graph.in_degrees)[:24].astype(np.int64)
    states = {}
    for threads in THREAD_COUNTS:
        parallel.set_num_threads(threads)
        try:
            prop = (MultiPropagation.adjoint(random_graph, sources.size)
                    if transpose
                    else MultiPropagation.forward(random_graph, sources.size))
            prop.seed_units(sources)
            for _ in range(3):
                prop.step(scale=np.sqrt(0.6))
            states[threads] = (prop.rows.copy(), prop.cols.copy(),
                               prop.values.copy())
        finally:
            parallel.set_num_threads(parallel.default_num_threads())
    for threads in THREAD_COUNTS[1:]:
        for a, b in zip(states[threads], states[1]):
            assert np.array_equal(a, b)


def test_multiprop_single_lane_b1(random_graph, forced_parallel):
    """B=1: lane blocking must degenerate gracefully to one block."""
    prop = MultiPropagation.forward(random_graph, 1)
    prop.seed_units(np.array([int(np.argmax(random_graph.in_degrees))]))
    reference = MultiPropagation.forward(random_graph, 1)
    reference.seed_units(np.array([int(np.argmax(random_graph.in_degrees))]))
    for threads in THREAD_COUNTS:
        parallel.set_num_threads(threads)
        try:
            prop.step()
        finally:
            parallel.set_num_threads(parallel.default_num_threads())
        reference.step()
        assert np.array_equal(prop.cols, reference.cols)
        assert np.array_equal(prop.values, reference.values)


def test_multiprop_empty_frontier(forced_parallel):
    """An empty stacked state advances to an empty state at any width."""
    graph = DiGraph.from_edges([(0, 1), (1, 2)], 3, name="tiny")
    for threads in THREAD_COUNTS:
        parallel.set_num_threads(threads)
        try:
            prop = MultiPropagation.forward(graph, 4)
            prop.step()
            assert prop.rows.size == 0
        finally:
            parallel.set_num_threads(parallel.default_num_threads())


def test_dangling_nodes_thread_invariant(forced_parallel):
    """Lanes seeded on dangling nodes (no in-neighbours) die identically."""
    graph = DiGraph.from_edges([(0, 1), (2, 1), (3, 4)], 6, name="dangle")
    dangling = graph.dangling_nodes()
    assert dangling.size > 0
    seeds = np.array([int(dangling[0]), 1, 4], dtype=np.int64)
    states = {}
    for threads in THREAD_COUNTS:
        parallel.set_num_threads(threads)
        try:
            prop = MultiPropagation.forward(graph, seeds.size)
            prop.seed_units(seeds)
            prop.step()
            states[threads] = (prop.rows.copy(), prop.cols.copy())
        finally:
            parallel.set_num_threads(parallel.default_num_threads())
    for threads in THREAD_COUNTS[1:]:
        for a, b in zip(states[threads], states[1]):
            assert np.array_equal(a, b)


# --------------------------------------------------------------------------- #
# tier 2/3: sharded walks — deterministic per (seed, shards), serial below
# the threshold
# --------------------------------------------------------------------------- #
def test_walk_shards_serial_below_threshold():
    assert walk_shards(SHARD_MIN_STATES - 1, threads=8) == 1
    assert walk_shards(0, threads=8) == 1
    assert walk_shards(SHARD_MIN_STATES * 4, threads=1) == 1
    assert walk_shards(SHARD_MIN_STATES * 4, threads=4) > 1


def test_advance_frontier_auto_matches_serial(random_graph):
    """Below the threshold the auto path must keep the pinned serial bits."""
    in_degrees = random_graph.in_degrees
    nodes = np.flatnonzero(in_degrees > 0).astype(np.int64)
    counts = np.full(nodes.size, 9, dtype=np.int64)
    auto = advance_frontier(np.random.default_rng(7), random_graph.in_indptr,
                            random_graph.in_indices, in_degrees, nodes,
                            counts, 0.8)
    serial = advance_frontier(np.random.default_rng(7),
                              random_graph.in_indptr,
                              random_graph.in_indices, in_degrees, nodes,
                              counts, 0.8, shards=1)
    assert np.array_equal(auto[0], serial[0])
    assert np.array_equal(auto[1], serial[1])


def test_advance_frontier_sharded_deterministic(random_graph):
    in_degrees = random_graph.in_degrees
    nodes = np.flatnonzero(in_degrees > 0).astype(np.int64)
    counts = np.full(nodes.size, 9, dtype=np.int64)
    runs = [advance_frontier(np.random.default_rng(7),
                             random_graph.in_indptr,
                             random_graph.in_indices, in_degrees, nodes,
                             counts, 0.8, shards=4) for _ in range(2)]
    assert np.array_equal(runs[0][0], runs[1][0])
    assert np.array_equal(runs[0][1], runs[1][1])


def test_advance_frontier_sharded_mass_conserved(random_graph):
    """survival=1.0, no dangling: sharding must move every single walk."""
    in_degrees = random_graph.in_degrees
    nodes = np.flatnonzero(in_degrees > 0).astype(np.int64)
    counts = np.full(nodes.size, 5, dtype=np.int64)
    dests, split = advance_frontier(
        np.random.default_rng(3), random_graph.in_indptr,
        random_graph.in_indices, in_degrees, nodes, counts, 1.0, shards=4)
    assert int(split.sum()) == int(counts.sum())
    assert np.all(np.diff(dests) > 0)               # aggregated and sorted


def test_advance_frontier_empty(random_graph):
    empty = np.array([], dtype=np.int64)
    dests, split = advance_frontier(
        np.random.default_rng(0), random_graph.in_indptr,
        random_graph.in_indices, random_graph.in_degrees, empty, empty,
        0.8, shards=4)
    assert dests.size == 0 and split.size == 0


# --------------------------------------------------------------------------- #
# consumers: end-to-end answers are thread-invariant
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("method,config", [
    ("sling", {"epsilon": 1e-2, "seed": 5}),
    ("linearization", {"samples_per_node": 30, "epsilon": 1e-3, "seed": 5}),
    ("exactsim", {"epsilon": 1e-2, "seed": 5, "max_total_samples": 20_000}),
])
def test_method_answers_thread_invariant(random_graph, forced_parallel,
                                         method, config):
    from repro.algorithms import registry

    scores = {}
    for threads in (1, 4):
        parallel.set_num_threads(threads)
        try:
            algorithm = registry.create(method, random_graph, dict(config))
            algorithm.preprocess()
            scores[threads] = algorithm.single_source(3).scores
        finally:
            parallel.set_num_threads(parallel.default_num_threads())
    assert np.array_equal(scores[1], scores[4])


# --------------------------------------------------------------------------- #
# shared-memory graph segments
# --------------------------------------------------------------------------- #
def _segment_graph():
    rng = np.random.default_rng(99)
    edges = rng.integers(0, 80, size=(350, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    return DiGraph.from_edges(edges, 80, name="segment-graph")


# Adopting in the creating process (workers adopt post-fork in production)
# leaves numpy views exporting the segment buffer, so the SharedMemory's
# GC-time close raises a BufferError it cannot deliver — expected here.
@pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnraisableExceptionWarning")
def test_graph_segment_lifecycle():
    from repro.service.shm import GraphSegment

    graph = _segment_graph()
    context = GraphContext(graph)
    segment = GraphSegment.create(graph, decays=(0.6,), context=context)
    try:
        assert segment.exists()
        assert segment.nbytes > 0
        before = graph.in_indices.copy()
        rebound = segment.adopt()
        assert rebound >= 6
        assert np.array_equal(graph.in_indices, before)
        assert not graph.in_indices.flags.writeable
        matrix = context.operator(0.6).matrix
        assert not matrix.data.flags.writeable
    finally:
        segment.destroy()
    assert not segment.exists()
    segment.destroy()                               # idempotent


def test_graph_segment_destroy_unlinks_once():
    from repro.service.shm import GraphSegment

    graph = _segment_graph()
    segment = GraphSegment.create(graph, context=GraphContext(graph))
    name = segment.name
    segment.destroy()
    assert not os.path.exists(os.path.join("/dev/shm", name.lstrip("/"))) \
        or not os.path.isdir("/dev/shm")


async def _wait_for(predicate, timeout=15.0, interval=0.05):
    for _ in range(int(timeout / interval)):
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


def _pool_factory(graph):
    from repro.service.planner import QueryPlanner

    def factory():
        return QueryPlanner(graph, default_method="sling",
                            method_configs={"sling": {"epsilon": 3e-2,
                                                      "seed": 7}},
                            cache_entries=32)
    return factory


def test_pool_segment_survives_chaos_kill_then_unlinks():
    """The acceptance scenario: a SIGKILLed worker neither corrupts nor
    unlinks the shared segment; only the supervisor's drain does."""
    import signal

    from repro.service.workers import WorkerPool
    from repro.service.queries import SinglePairQuery

    graph = _segment_graph()
    queries = [SinglePairQuery(s, t) for s, t in
               [(1, 2), (3, 4), (5, 6), (7, 8), (9, 10), (11, 12)]]

    async def scenario():
        pool = WorkerPool(_pool_factory(graph), num_workers=2, batch_size=2,
                          shared_graph=graph, shared_decays=(0.6,))
        await pool.start()
        try:
            segment = pool.segment
            assert segment is not None and segment.exists()
            first = await asyncio.gather(*[pool.submit(q)
                                           for q in queries[:3]])
            os.kill(pool.pids()[0], signal.SIGKILL)
            # Wait for the supervisor to *register* the death, not just for
            # a full roster — a killed pid can linger as a zombie that
            # alive_count still sees before the heartbeat loop reaps it.
            assert await _wait_for(lambda: pool.stats()["deaths"] >= 1)
            assert await _wait_for(
                lambda: pool.alive_count() == pool.num_workers)
            assert segment.exists()                  # kill did not unlink
            second = await asyncio.gather(*[pool.submit(q)
                                            for q in queries[3:]])
            stats = pool.stats()
            assert stats["shared_segment_bytes"] == segment.nbytes
        finally:
            await pool.drain()
        return segment, first + second, stats

    segment, payloads, stats = asyncio.run(scenario())
    assert not segment.exists()                      # drain unlinked exactly once
    assert all("error" not in p for p in payloads)
    assert stats["deaths"] >= 1


def test_respawned_worker_prewarms_hot_sources():
    """Cold-respawn affinity: the replacement worker re-answers its slot's
    recent sources before rejoining the rotation."""
    import signal

    from repro.service.workers import WorkerPool
    from repro.service.queries import SingleSourceQuery

    graph = _segment_graph()
    queries = [SingleSourceQuery(source=s) for s in (1, 2, 3, 4, 5)]

    async def scenario():
        pool = WorkerPool(_pool_factory(graph), num_workers=1, batch_size=2)
        await pool.start()
        try:
            await asyncio.gather(*[pool.submit(q) for q in queries])
            os.kill(pool.pids()[0], signal.SIGKILL)
            assert await _wait_for(
                lambda: pool.alive_count() == pool.num_workers)
            assert await _wait_for(
                lambda: pool.stats()["prewarmed_sources"] > 0)
            # The prewarmed worker still answers correctly afterwards.
            payload = await pool.submit(queries[0])
            assert "error" not in payload
            return pool.stats()
        finally:
            await pool.drain()

    stats = asyncio.run(scenario())
    assert stats["prewarms"] >= 1
    assert stats["prewarmed_sources"] >= 1


# --------------------------------------------------------------------------- #
# WAL compaction + checkpoint recovery
# --------------------------------------------------------------------------- #
def _ckpt_graph():
    rng = np.random.default_rng(11)
    edges = rng.integers(0, 120, size=(500, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    return DiGraph.from_edges(edges, 120, name="ckpt-graph")


def test_checkpoint_roundtrip(tmp_path):
    graph = _ckpt_graph()
    checkpoint = GraphCheckpoint(tmp_path / "g.checkpoint.npz")
    checkpoint.save(graph, 5)
    loaded, version = checkpoint.load()
    assert version == 5
    assert np.array_equal(loaded.fingerprint(), graph.fingerprint())


def test_checkpoint_missing_is_none(tmp_path):
    assert GraphCheckpoint(tmp_path / "absent.npz").load() is None


def test_checkpoint_corruption_fails_loudly(tmp_path):
    graph = _ckpt_graph()
    checkpoint = GraphCheckpoint(tmp_path / "g.checkpoint.npz")
    checkpoint.save(graph, 1)
    blob = bytearray(checkpoint.path.read_bytes())
    blob[len(blob) // 2] ^= 0xFF
    checkpoint.path.write_bytes(bytes(blob))
    with pytest.raises(WalCorruptionError):
        checkpoint.load()


def test_recover_after_compaction(tmp_path):
    """The satellite's core scenario: compact, restart, replay the tail."""
    wal = UpdateLog(tmp_path / "updates.wal")
    context = GraphContext(_ckpt_graph())
    for k in range(3):
        context.apply_updates(EdgeBatch.from_wire(
            {"type": "update", "insert": [[k, 100 + k]], "delete": []}),
            wal=wal)
    GraphCheckpoint.for_wal(wal).save(context.graph_at(2), 2)
    assert wal.compact(2) == 1                      # only version 3 survives

    restarted = GraphContext(_ckpt_graph())
    assert restarted.recover(wal) == 1
    assert restarted.graph_version == 3
    assert np.array_equal(restarted.graph.fingerprint(),
                          context.graph.fingerprint())


def test_recover_checkpoint_only(tmp_path):
    """A fully compacted WAL (empty tail) still restores the checkpoint."""
    wal = UpdateLog(tmp_path / "updates.wal")
    context = GraphContext(_ckpt_graph())
    for k in range(2):
        context.apply_updates(EdgeBatch.from_wire(
            {"type": "update", "insert": [[k, 50 + k]], "delete": []}),
            wal=wal)
    GraphCheckpoint.for_wal(wal).save(context.graph, 2)
    assert wal.compact(2) == 0

    restarted = GraphContext(_ckpt_graph())
    assert restarted.recover(wal) == 0
    assert restarted.graph_version == 2
    assert np.array_equal(restarted.graph.fingerprint(),
                          context.graph.fingerprint())


def test_recover_rejects_foreign_checkpoint(tmp_path):
    wal = UpdateLog(tmp_path / "updates.wal")
    other = DiGraph.from_edges([(0, 1), (1, 2)], 3, name="other")
    GraphCheckpoint.for_wal(wal).save(other, 4)
    with pytest.raises(WalCorruptionError):
        GraphContext(_ckpt_graph()).recover(wal)


def test_planner_compacts_after_swap(tmp_path):
    """The serving loop truncates the WAL once indices + checkpoint land."""
    from repro.service.planner import QueryPlanner
    from repro.service.queries import SingleSourceQuery

    wal = UpdateLog(tmp_path / "updates.wal")
    index_dir = tmp_path / "indices"
    config = {"prsim": {"seed": 11, "epsilon": 0.1}}

    graph = _ckpt_graph()
    planner = QueryPlanner(graph, context=GraphContext(graph),
                           default_method="prsim",
                           method_configs=config, index_dir=index_dir,
                           save_indices=True, wal=wal)
    first = planner.answer([SingleSourceQuery(source=3)])[0]
    planner.apply_updates(EdgeBatch.from_wire(
        {"type": "update", "insert": [[1, 100]], "delete": []}))
    report = planner.complete_repairs()
    assert report["wal"]["compacted_to"] == 1
    assert report["wal"]["indices_persisted"] >= 1
    assert wal.replay() == []                       # prefix gone
    assert GraphCheckpoint.for_wal(wal).exists()
    answer = planner.answer([SingleSourceQuery(source=3)])[0]

    # Restart: a *private* fresh context (a real process restart would not
    # share the old one), so recovery must come from the checkpoint; the
    # persisted index then loads against the recovered graph and the
    # answers match bit-for-bit.
    fresh = _ckpt_graph()
    restarted = QueryPlanner(fresh, context=GraphContext(fresh),
                             default_method="prsim",
                             method_configs=config, index_dir=index_dir,
                             save_indices=True, wal=wal)
    assert restarted.graph_version == 1
    again = restarted.answer([SingleSourceQuery(source=3)])[0]
    assert np.array_equal(answer.result.scores, again.result.scores)
    assert restarted.stats()["index_loads"] >= 1
