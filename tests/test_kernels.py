"""Equivalence suite: vectorized CSR frontier kernels vs dict-based reference.

Every kernel in ``repro.kernels.frontier`` must reproduce the seed's
pure-Python loops (preserved in ``repro.kernels.reference``) to 1e-12 on
random power-law graphs — including dangling nodes (which power-law directed
graphs produce naturally) and self-loops (injected explicitly).  Property
tests are hypothesis-driven; a few deterministic cases pin the edge cases
(empty frontier, empty graph, single node).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import power_law_graph, preferential_attachment_graph
from repro.kernels.frontier import (
    csr_gather,
    propagate_batch,
    propagate_batch_transpose,
    propagate_distribution,
    propagate_transpose,
    push_frontier,
)
from repro.kernels.reference import (
    _reference_forward_push_hop_ppr,
    _reference_propagate_distribution,
    _reference_propagate_transpose,
    _reference_push_frontier,
)
from repro.kernels.sparsevec import SparseVector
from repro.ppr.push import forward_push_hop_ppr, forward_push_hop_ppr_batch

DECAY = 0.6
SQRT_C = float(np.sqrt(DECAY))
TOLERANCE = 1e-12


# --------------------------------------------------------------------------- #
# graph / frontier strategies
# --------------------------------------------------------------------------- #
def _random_graph(seed: int, num_nodes: int, with_self_loops: bool) -> DiGraph:
    """A random power-law graph with dangling nodes and optional self-loops."""
    base = power_law_graph(num_nodes, 3.0, exponent=2.1, directed=True, seed=seed)
    if not with_self_loops:
        return base
    rng = np.random.default_rng(seed + 1)
    loops = rng.choice(num_nodes, size=max(1, num_nodes // 8), replace=False)
    edges = np.vstack([base.edge_array(), np.column_stack([loops, loops])])
    return DiGraph.from_edges(edges, num_nodes=num_nodes, name="power-law+loops")


graph_strategy = st.builds(
    _random_graph,
    seed=st.integers(min_value=0, max_value=2**16),
    num_nodes=st.integers(min_value=2, max_value=80),
    with_self_loops=st.booleans(),
)


def _random_frontier(graph: DiGraph, seed: int, size: int) -> dict:
    rng = np.random.default_rng(seed)
    size = min(size, graph.num_nodes)
    nodes = rng.choice(graph.num_nodes, size=size, replace=False)
    masses = rng.uniform(1e-6, 1.0, size=size)
    return {int(node): float(mass) for node, mass in zip(nodes, masses)}


def _dense(mapping: dict, num_nodes: int) -> np.ndarray:
    vector = np.zeros(num_nodes, dtype=np.float64)
    for node, value in mapping.items():
        vector[node] += value
    return vector


# --------------------------------------------------------------------------- #
# csr_gather
# --------------------------------------------------------------------------- #
class TestCsrGather:
    @settings(max_examples=30, deadline=None)
    @given(graph=graph_strategy, seed=st.integers(0, 2**16))
    def test_matches_naive_slicing(self, graph, seed):
        rng = np.random.default_rng(seed)
        nodes = rng.choice(graph.num_nodes, size=min(10, graph.num_nodes),
                           replace=False).astype(np.int64)
        targets, counts = csr_gather(graph.in_indptr, graph.in_indices, nodes)
        expected = np.concatenate(
            [graph.in_neighbors(int(v)) for v in nodes]
            or [np.empty(0, dtype=np.int64)])
        assert np.array_equal(targets, expected)
        assert np.array_equal(counts, graph.in_degrees[nodes])

    def test_empty_nodes(self, toy_graph):
        targets, counts = csr_gather(toy_graph.in_indptr, toy_graph.in_indices,
                                     np.empty(0, dtype=np.int64))
        assert targets.size == 0 and counts.size == 0


# --------------------------------------------------------------------------- #
# push_frontier
# --------------------------------------------------------------------------- #
class TestPushFrontier:
    @settings(max_examples=40, deadline=None)
    @given(graph=graph_strategy, seed=st.integers(0, 2**16),
           size=st.integers(1, 40), r_max=st.sampled_from([1e-1, 1e-2, 1e-4]),
           expand=st.booleans())
    def test_matches_reference(self, graph, seed, size, r_max, expand):
        frontier = _random_frontier(graph, seed, size)
        level = push_frontier(graph.in_indptr, graph.in_indices,
                              SparseVector.from_dict(frontier),
                              r_max=r_max, sqrt_c=SQRT_C,
                              num_nodes=graph.num_nodes, expand=expand)
        emitted, nxt, dropped, absorbed, pushed, traversed = \
            _reference_push_frontier(graph, frontier, r_max=r_max,
                                     sqrt_c=SQRT_C, expand=expand)
        n = graph.num_nodes
        assert np.max(np.abs(level.emitted.to_dense(n) - _dense(emitted, n)),
                      initial=0.0) < TOLERANCE
        assert np.max(np.abs(level.frontier.to_dense(n) - _dense(nxt, n)),
                      initial=0.0) < TOLERANCE
        assert level.dropped_mass == pytest.approx(dropped, abs=TOLERANCE)
        assert level.absorbed_mass == pytest.approx(absorbed, abs=TOLERANCE)
        assert level.pushed_entries == pushed
        assert level.traversed_edges == traversed

    def test_empty_frontier(self, toy_graph):
        level = push_frontier(toy_graph.in_indptr, toy_graph.in_indices,
                              SparseVector.empty(), r_max=1e-3, sqrt_c=SQRT_C,
                              num_nodes=toy_graph.num_nodes)
        assert level.emitted.nnz == 0 and level.frontier.nnz == 0
        assert level.dropped_mass == 0.0 and level.traversed_edges == 0

    def test_mass_conservation_single_level(self, collab_graph):
        frontier = _random_frontier(collab_graph, 3, 20)
        total_in = sum(frontier.values())
        level = push_frontier(collab_graph.in_indptr, collab_graph.in_indices,
                              SparseVector.from_dict(frontier),
                              r_max=1e-2, sqrt_c=SQRT_C,
                              num_nodes=collab_graph.num_nodes)
        total_out = (level.emitted.sum() + level.frontier.sum() +
                     level.dropped_mass + level.absorbed_mass)
        assert total_out == pytest.approx(total_in, abs=1e-12)


# --------------------------------------------------------------------------- #
# propagate_distribution / propagate_transpose
# --------------------------------------------------------------------------- #
class TestPropagate:
    @settings(max_examples=40, deadline=None)
    @given(graph=graph_strategy, seed=st.integers(0, 2**16), size=st.integers(1, 40))
    def test_distribution_matches_reference(self, graph, seed, size):
        frontier = _random_frontier(graph, seed, size)
        spread, traversed = propagate_distribution(
            graph.in_indptr, graph.in_indices, SparseVector.from_dict(frontier),
            num_nodes=graph.num_nodes)
        expected, expected_traversed = _reference_propagate_distribution(
            graph, frontier)
        assert np.max(np.abs(spread.to_dense(graph.num_nodes) -
                             _dense(expected, graph.num_nodes)),
                      initial=0.0) < TOLERANCE
        assert traversed == expected_traversed

    @settings(max_examples=40, deadline=None)
    @given(graph=graph_strategy, seed=st.integers(0, 2**16), size=st.integers(1, 40))
    def test_transpose_matches_reference(self, graph, seed, size):
        frontier = _random_frontier(graph, seed, size)
        spread, traversed = propagate_transpose(
            graph.out_indptr, graph.out_indices, graph.in_degrees,
            SparseVector.from_dict(frontier), num_nodes=graph.num_nodes)
        expected, expected_traversed = _reference_propagate_transpose(
            graph, frontier)
        assert np.max(np.abs(spread.to_dense(graph.num_nodes) -
                             _dense(expected, graph.num_nodes)),
                      initial=0.0) < TOLERANCE
        assert traversed == expected_traversed

    def test_transpose_matches_dense_operator(self, collab_graph):
        """Pᵀ kernel vs the scipy matrix the seed's probes used."""
        from repro.graph.transition import TransitionOperator
        operator = TransitionOperator(collab_graph, DECAY)
        frontier = _random_frontier(collab_graph, 5, 15)
        dense_in = _dense(frontier, collab_graph.num_nodes)
        spread, _ = propagate_transpose(
            collab_graph.out_indptr, collab_graph.out_indices,
            collab_graph.in_degrees, SparseVector.from_dict(frontier),
            num_nodes=collab_graph.num_nodes)
        assert np.max(np.abs(spread.to_dense(collab_graph.num_nodes) -
                             operator.matrix_t @ dense_in)) < TOLERANCE


# --------------------------------------------------------------------------- #
# batched variants
# --------------------------------------------------------------------------- #
class TestBatchedPropagate:
    @settings(max_examples=25, deadline=None)
    @given(graph=graph_strategy, seed=st.integers(0, 2**16),
           batch=st.integers(1, 6), transpose=st.booleans())
    def test_matches_per_item_reference(self, graph, seed, batch, transpose):
        distributions = [_random_frontier(graph, seed + b, 1 + (seed + b) % 20)
                         for b in range(batch)]
        rows = np.concatenate([np.full(len(d), b, dtype=np.int64)
                               for b, d in enumerate(distributions)])
        cols = np.concatenate([np.fromiter(sorted(d), dtype=np.int64)
                               for d in distributions])
        vals = np.concatenate([np.array([d[k] for k in sorted(d)])
                               for d in distributions])
        if transpose:
            out_rows, out_cols, out_vals, traversed = propagate_batch_transpose(
                graph.out_indptr, graph.out_indices, graph.in_degrees,
                rows, cols, vals, num_nodes=graph.num_nodes)
            per_item = [_reference_propagate_transpose(graph, d)
                        for d in distributions]
        else:
            out_rows, out_cols, out_vals, traversed = propagate_batch(
                graph.in_indptr, graph.in_indices, rows, cols, vals,
                num_nodes=graph.num_nodes)
            per_item = [_reference_propagate_distribution(graph, d)
                        for d in distributions]
        assert traversed == sum(cost for _, cost in per_item)
        for b, (expected, _) in enumerate(per_item):
            mask = out_rows == b
            got = np.zeros(graph.num_nodes)
            got[out_cols[mask]] = out_vals[mask]
            assert np.max(np.abs(got - _dense(expected, graph.num_nodes)),
                          initial=0.0) < TOLERANCE


# --------------------------------------------------------------------------- #
# full push: vectorized vs seed loop, batch vs single
# --------------------------------------------------------------------------- #
class TestForwardPushEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(graph=graph_strategy, source_pick=st.integers(0, 2**16),
           num_hops=st.integers(0, 12), r_max=st.sampled_from([1e-1, 1e-3, 1e-5]))
    def test_matches_reference_implementation(self, graph, source_pick,
                                              num_hops, r_max):
        source = source_pick % graph.num_nodes
        result = forward_push_hop_ppr(graph, source, num_hops, r_max, decay=DECAY)
        estimates, residual, pushed = _reference_forward_push_hop_ppr(
            graph, source, num_hops, r_max, decay=DECAY)
        assert len(result.levels) == len(estimates)
        for level, expected in zip(result.levels, estimates):
            assert np.max(np.abs(level.to_dense(graph.num_nodes) -
                                 _dense(expected, graph.num_nodes)),
                          initial=0.0) < TOLERANCE
        assert result.residual_mass == pytest.approx(residual, abs=TOLERANCE)
        assert result.pushed_entries == pushed

    @settings(max_examples=15, deadline=None)
    @given(graph=graph_strategy, seed=st.integers(0, 2**16),
           num_hops=st.integers(0, 10))
    def test_batch_matches_single_source(self, graph, seed, num_hops):
        rng = np.random.default_rng(seed)
        sources = rng.choice(graph.num_nodes,
                             size=min(4, graph.num_nodes), replace=False)
        batched = forward_push_hop_ppr_batch(graph, sources, num_hops, 1e-3,
                                             decay=DECAY)
        for source, result in zip(sources, batched):
            single = forward_push_hop_ppr(graph, int(source), num_hops, 1e-3,
                                          decay=DECAY)
            assert np.max(np.abs(result.total_dense(graph.num_nodes) -
                                 single.total_dense(graph.num_nodes)),
                          initial=0.0) < TOLERANCE
            assert result.residual_mass == pytest.approx(
                single.residual_mass, abs=TOLERANCE)
            assert result.pushed_entries == single.pushed_entries

    def test_batch_empty_sources(self, toy_graph):
        assert forward_push_hop_ppr_batch(toy_graph, [], 4, 1e-3) == []


# --------------------------------------------------------------------------- #
# SparseVector container behaviour
# --------------------------------------------------------------------------- #
class TestSparseVector:
    def test_from_dict_roundtrip(self):
        mapping = {7: 0.25, 2: 0.5, 11: 0.125}
        vector = SparseVector.from_dict(mapping)
        assert np.array_equal(vector.indices, [2, 7, 11])
        assert vector.to_dict() == mapping
        assert vector.sum() == pytest.approx(0.875)

    def test_from_pairs_sums_duplicates(self):
        vector = SparseVector.from_pairs([3, 1, 3], [0.5, 1.0, 0.25])
        assert np.array_equal(vector.indices, [1, 3])
        assert np.allclose(vector.values, [1.0, 0.75])

    def test_filter_and_scale(self):
        vector = SparseVector.from_dict({0: 0.5, 1: 1e-6, 2: 0.25})
        filtered = vector.filtered(1e-3)
        assert np.array_equal(filtered.indices, [0, 2])
        assert np.allclose(filtered.scaled(2.0).values, [1.0, 0.5])

    def test_memory_bytes_is_array_payload(self):
        vector = SparseVector.from_dict({i: float(i + 1) for i in range(10)})
        assert vector.memory_bytes() == 10 * (8 + 8)

    def test_empty(self):
        empty = SparseVector.empty()
        assert len(empty) == 0 and not empty and empty.sum() == 0.0

    def test_equality_compares_contents(self):
        first = SparseVector.from_dict({1: 0.5, 4: 0.25})
        second = SparseVector.from_dict({1: 0.5, 4: 0.25})
        third = SparseVector.from_dict({1: 0.5, 4: 0.75})
        assert first == second
        assert first != third
        assert first != "not a vector"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SparseVector(np.array([1, 2]), np.array([1.0]))

    def test_sparsify_to_vector_matches_dense_truncation(self):
        from repro.core.sparse import sparsify_to_vector, sparsify_vector
        rng = np.random.default_rng(9)
        dense = rng.uniform(0.0, 1e-2, size=200)
        threshold = 2e-3
        vector = sparsify_to_vector(dense, threshold)
        assert np.array_equal(vector.to_dense(200), sparsify_vector(dense, threshold))
