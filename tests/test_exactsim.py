"""Tests for the ExactSim algorithm: accuracy against PowerMethod ground truth."""

import numpy as np
import pytest

from repro.core.config import ExactSimConfig
from repro.core.exactsim import ExactSim, exact_single_source, exact_top_k
from repro.core.result import SingleSourceResult, TopKResult
from repro.metrics.accuracy import max_error, precision_at_k

DECAY = 0.6


class TestAccuracy:
    @pytest.mark.parametrize("epsilon", [1e-1, 1e-2, 1e-3])
    def test_error_within_epsilon_collab(self, collab_graph, collab_simrank, epsilon):
        config = ExactSimConfig(epsilon=epsilon, decay=DECAY, seed=17,
                                max_total_samples=200_000)
        result = ExactSim(collab_graph, config).single_source(3)
        assert max_error(result.scores, collab_simrank[3]) <= epsilon

    def test_error_within_epsilon_directed(self, directed_graph, directed_simrank):
        config = ExactSimConfig(epsilon=1e-2, decay=DECAY, seed=23, max_total_samples=200_000)
        result = ExactSim(directed_graph, config).single_source(7)
        assert max_error(result.scores, directed_simrank[7]) <= 1e-2

    def test_basic_variant_error_within_epsilon(self, collab_graph, collab_simrank):
        config = ExactSimConfig.basic(epsilon=1e-2, decay=DECAY, seed=29,
                                      max_total_samples=200_000)
        result = ExactSim(collab_graph, config).single_source(5)
        assert max_error(result.scores, collab_simrank[5]) <= 1e-2

    def test_toy_graph_exact_structure(self, toy_graph, toy_simrank):
        config = ExactSimConfig(epsilon=1e-3, decay=DECAY, seed=3)
        result = ExactSim(toy_graph, config).single_source(2)
        assert max_error(result.scores, toy_simrank[2]) <= 1e-3

    def test_dangling_source_trivial_answer(self, toy_graph):
        # Node 0 has no in-neighbours: S(0, j) = 1 iff j = 0.
        config = ExactSimConfig(epsilon=1e-3, decay=DECAY, seed=3)
        result = ExactSim(toy_graph, config).single_source(0)
        expected = np.zeros(toy_graph.num_nodes)
        expected[0] = 1.0
        assert np.allclose(result.scores, expected, atol=1e-9)

    def test_error_decreases_with_epsilon(self, collab_graph, collab_simrank):
        errors = []
        for epsilon in (1e-1, 1e-2, 1e-3):
            config = ExactSimConfig(epsilon=epsilon, decay=DECAY, seed=31,
                                    max_total_samples=200_000)
            result = ExactSim(collab_graph, config).single_source(11)
            errors.append(max_error(result.scores, collab_simrank[11]))
        assert errors[0] >= errors[-1]

    def test_top_k_matches_ground_truth(self, collab_graph, collab_simrank):
        config = ExactSimConfig(epsilon=1e-3, decay=DECAY, seed=37, max_total_samples=200_000)
        result = ExactSim(collab_graph, config).single_source(9)
        assert precision_at_k(result.scores, collab_simrank[9], 20, exclude=9) == 1.0

    def test_scores_are_probabilities(self, collab_graph):
        config = ExactSimConfig(epsilon=1e-2, decay=DECAY, seed=41)
        result = ExactSim(collab_graph, config).single_source(0)
        assert np.all(result.scores >= 0.0)
        assert np.all(result.scores <= 1.0)
        assert result.scores[0] == pytest.approx(1.0, abs=1e-2)


class TestVariants:
    def test_optimized_not_worse_than_basic_at_same_cap(self, collab_graph, collab_simrank):
        cap = 60_000
        source = 13
        optimized = ExactSim(collab_graph, ExactSimConfig(
            epsilon=1e-2, decay=DECAY, seed=43, max_total_samples=cap)).single_source(source)
        basic = ExactSim(collab_graph, ExactSimConfig.basic(
            epsilon=1e-2, decay=DECAY, seed=43, max_total_samples=cap)).single_source(source)
        optimized_error = max_error(optimized.scores, collab_simrank[source])
        basic_error = max_error(basic.scores, collab_simrank[source])
        # Lemma 3: at an equal realised budget the π²-allocation has a variance
        # bound smaller by ‖π‖⁴; allow slack for randomness.
        assert optimized_error <= basic_error * 3 + 1e-3

    def test_sparse_linearization_changes_little(self, collab_graph, collab_simrank):
        source = 2
        common = dict(epsilon=1e-2, decay=DECAY, seed=47, max_total_samples=50_000,
                      use_local_exploitation=False, use_squared_sampling=True)
        dense = ExactSim(collab_graph, ExactSimConfig(
            use_sparse_linearization=False, **common)).single_source(source)
        sparse = ExactSim(collab_graph, ExactSimConfig(
            use_sparse_linearization=True, **common)).single_source(source)
        assert max_error(dense.scores, collab_simrank[source]) <= 1e-2
        assert max_error(sparse.scores, collab_simrank[source]) <= 1e-2
        # Sparse variant stores strictly fewer PPR entries.
        assert sparse.stats["ppr_nonzero_entries"] <= dense.stats["ppr_nonzero_entries"]
        assert sparse.stats["ppr_memory_bytes"] <= dense.stats["ppr_memory_bytes"]

    def test_determinism_with_seed(self, collab_graph):
        config = ExactSimConfig(epsilon=1e-2, decay=DECAY, seed=53, max_total_samples=30_000)
        first = ExactSim(collab_graph, config).single_source(4)
        second = ExactSim(collab_graph, config).single_source(4)
        assert np.array_equal(first.scores, second.scores)

    def test_algorithm_label_reflects_variant(self, collab_graph):
        optimized = ExactSim(collab_graph, ExactSimConfig(
            epsilon=1e-1, seed=1, max_total_samples=10_000)).single_source(0)
        basic = ExactSim(collab_graph, ExactSimConfig.basic(
            epsilon=1e-1, seed=1, max_total_samples=10_000)).single_source(0)
        assert optimized.algorithm == "exactsim"
        assert basic.algorithm == "exactsim-basic"


class TestStatsAndInterfaces:
    def test_stats_keys_present(self, collab_graph):
        config = ExactSimConfig(epsilon=1e-2, decay=DECAY, seed=59, max_total_samples=20_000)
        result = ExactSim(collab_graph, config).single_source(6)
        for key in ("iterations", "sample_budget", "samples_realised", "nodes_sampled",
                    "ppr_squared_norm", "ppr_memory_bytes", "extra_memory_bytes"):
            assert key in result.stats

    def test_sample_cap_is_recorded(self, collab_graph):
        config = ExactSimConfig(epsilon=1e-4, decay=DECAY, seed=61, max_total_samples=5_000)
        result = ExactSim(collab_graph, config).single_source(6)
        assert result.stats["samples_capped"] == 1.0
        assert result.stats["samples_realised"] <= 5_000 + collab_graph.num_nodes

    def test_invalid_source_rejected(self, collab_graph):
        engine = ExactSim(collab_graph, ExactSimConfig(epsilon=1e-1))
        with pytest.raises(ValueError):
            engine.single_source(collab_graph.num_nodes)

    def test_query_seconds_recorded(self, collab_graph):
        result = ExactSim(collab_graph, ExactSimConfig(
            epsilon=1e-1, seed=1, max_total_samples=5_000)).single_source(0)
        assert result.query_seconds > 0.0

    def test_top_k_method(self, collab_graph):
        engine = ExactSim(collab_graph, ExactSimConfig(
            epsilon=1e-2, seed=1, max_total_samples=20_000))
        top = engine.top_k(3, k=10)
        assert isinstance(top, TopKResult)
        assert top.k == 10
        assert 3 not in top.nodes

    def test_convenience_functions(self, collab_graph, collab_simrank):
        result = exact_single_source(collab_graph, 1, epsilon=1e-2, seed=7,
                                     max_total_samples=50_000)
        assert isinstance(result, SingleSourceResult)
        assert max_error(result.scores, collab_simrank[1]) <= 1e-2
        basic = exact_single_source(collab_graph, 1, epsilon=1e-1, optimized=False, seed=7,
                                    max_total_samples=20_000)
        assert basic.algorithm == "exactsim-basic"
        top = exact_top_k(collab_graph, 1, k=5, epsilon=1e-2, seed=7)
        assert top.k == 5


class TestResultTypes:
    def test_top_k_ordering_and_source_exclusion(self, collab_graph, collab_simrank):
        result = SingleSourceResult(source=2, scores=collab_simrank[2].copy())
        top = result.top_k(10)
        assert 2 not in top.nodes
        assert np.all(np.diff(top.scores) <= 1e-12)
        included = result.top_k(10, include_source=True)
        assert included.nodes[0] == 2

    def test_top_k_k_larger_than_n(self, toy_graph, toy_simrank):
        result = SingleSourceResult(source=1, scores=toy_simrank[1].copy())
        top = result.top_k(100)
        assert top.k == toy_graph.num_nodes - 1 + 0 or top.k <= toy_graph.num_nodes

    def test_top_k_invalid_k(self, toy_simrank):
        result = SingleSourceResult(source=0, scores=toy_simrank[0].copy())
        with pytest.raises(ValueError):
            result.top_k(0)

    def test_similarity_and_max_error_against(self, toy_simrank):
        result = SingleSourceResult(source=0, scores=toy_simrank[0].copy())
        assert result.similarity(0) == 1.0
        assert result.max_error_against(toy_simrank[0]) == 0.0
        with pytest.raises(ValueError):
            result.max_error_against(np.zeros(3))

    def test_precision_against(self, toy_simrank):
        result = SingleSourceResult(source=0, scores=toy_simrank[0].copy())
        top = result.top_k(3)
        assert top.precision_against(top) == 1.0
        assert isinstance(top.as_pairs(), list)


class TestBatchedQueries:
    """The vectorized single_source_batch path (batched push + batched Pᵀ)."""

    def test_batch_accuracy_within_epsilon(self, collab_graph, collab_simrank):
        epsilon = 1e-2
        config = ExactSimConfig(epsilon=epsilon, decay=DECAY, seed=17,
                                max_total_samples=200_000)
        sources = [0, 3, 12, 40]
        results = ExactSim(collab_graph, config).single_source_batch(sources)
        assert [r.source for r in results] == sources
        for result in results:
            assert max_error(result.scores, collab_simrank[result.source]) <= epsilon
            assert result.query_seconds > 0.0
            assert result.stats["batch_size"] == float(len(sources))

    def test_batch_close_to_sequential(self, collab_graph):
        config = ExactSimConfig(epsilon=5e-2, decay=DECAY, seed=3,
                                max_total_samples=50_000)
        sources = [1, 7]
        sequential = [ExactSim(collab_graph, config).single_source(s)
                      for s in sources]
        batched = ExactSim(collab_graph, config).single_source_batch(sources)
        for loop_result, batch_result in zip(sequential, batched):
            assert np.max(np.abs(loop_result.scores - batch_result.scores)) <= 0.1

    def test_batch_basic_variant(self, collab_graph, collab_simrank):
        config = ExactSimConfig.basic(epsilon=5e-2, decay=DECAY, seed=9,
                                      max_total_samples=50_000)
        results = ExactSim(collab_graph, config).single_source_batch([4])
        assert results[0].algorithm == "exactsim-basic"
        assert max_error(results[0].scores, collab_simrank[4]) <= 5e-2

    def test_empty_batch(self, collab_graph):
        assert ExactSim(collab_graph).single_source_batch([]) == []

    def test_batch_rejects_invalid_source(self, collab_graph):
        with pytest.raises(Exception):
            ExactSim(collab_graph).single_source_batch([0, collab_graph.num_nodes])


class TestAlgorithmInterface:
    """ExactSim as a first-class SimRankAlgorithm."""

    def test_subclasses_base(self, collab_graph):
        from repro.baselines.base import SimRankAlgorithm
        engine = ExactSim(collab_graph)
        assert isinstance(engine, SimRankAlgorithm)
        assert not engine.index_based
        assert engine.index_bytes() == 0
        assert engine.name == "exactsim"

    def test_basic_config_changes_name(self, collab_graph):
        engine = ExactSim(collab_graph, ExactSimConfig.basic(epsilon=1e-1))
        assert engine.name == "exactsim-basic"

    def test_shares_graph_context(self, collab_graph):
        from repro.graph.context import GraphContext
        context = GraphContext.shared(collab_graph)
        engine = ExactSim(collab_graph)
        assert engine.context is context
        assert engine._operator is context.operator(DECAY)


class TestBatchedPushPath:
    """Above _DENSE_BATCH_MAX_NODES the batch rides the push kernel."""

    @pytest.fixture(scope="class")
    def large_graph(self):
        from repro.graph.generators import power_law_graph
        return power_law_graph(5_000, 4.0, directed=False, seed=33)

    def test_push_path_selected_and_close_to_sequential(self, large_graph):
        assert large_graph.num_nodes > ExactSim._DENSE_BATCH_MAX_NODES
        epsilon = 5e-2
        config = ExactSimConfig(epsilon=epsilon, decay=DECAY, seed=5,
                                max_total_samples=20_000)
        sources = [3, 11]
        sequential = [ExactSim(large_graph, config).single_source(s)
                      for s in sources]
        batched = ExactSim(large_graph, config).single_source_batch(sources)
        for loop_result, batch_result in zip(sequential, batched):
            # Both are within ε of the truth, so they agree within 2ε.
            difference = np.max(np.abs(loop_result.scores - batch_result.scores))
            assert difference <= 2 * epsilon
            # The push path stores truncated sparse hops, not dense columns.
            assert batch_result.stats["ppr_nonzero_entries"] > 0

    def test_basic_batch_never_truncates(self, large_graph):
        """Batched exactsim-basic must stay the untruncated basic algorithm."""
        from repro.ppr.hop_ppr import hop_ppr_vectors

        epsilon = 5e-2
        config = ExactSimConfig.basic(epsilon=epsilon, decay=DECAY, seed=5,
                                      max_total_samples=5_000)
        sources = [3, 11]
        engine = ExactSim(large_graph, config)
        iterations = config.num_iterations()
        # Phase 1 of the batch is the dense recursion: every hop vector must
        # be bit-identical to the sequential path and never truncated —
        # batching must not smuggle the Lemma 2 truncation into the basic
        # algorithm.
        batched_hops = engine._hop_ppr_batch(sources, iterations)
        for source, hop_ppr in zip(sources, batched_hops):
            reference = hop_ppr_vectors(large_graph, source, iterations,
                                        decay=DECAY, truncation_threshold=None,
                                        operator=engine._operator)
            assert not hop_ppr.truncated
            for level in range(iterations + 1):
                assert np.array_equal(hop_ppr.hop_dense(level),
                                      reference.hop_dense(level))
        # Phase 2 is one aggregated sampling call for the whole batch (its
        # RNG stream differs from the per-source loop), so end-to-end the
        # batch agrees with the sequential loop within the ε guarantee.
        sequential = [ExactSim(large_graph, config).single_source(s)
                      for s in sources]
        batched = ExactSim(large_graph, config).single_source_batch(sources)
        for loop_result, batch_result in zip(sequential, batched):
            difference = np.max(np.abs(loop_result.scores - batch_result.scores))
            assert difference <= 2 * epsilon
