"""Integration tests: end-to-end flows across modules and registered datasets."""

import numpy as np
import pytest

from repro import (
    ExactSim,
    ExactSimConfig,
    LinearizationSimRank,
    MonteCarloSimRank,
    ParSim,
    PowerMethod,
    PRSim,
    ProbeSim,
    exact_single_source,
)
from repro.experiments.figures import fig_error_vs_query_time
from repro.experiments.harness import ExperimentSettings, select_query_nodes
from repro.experiments.reporting import format_series_table
from repro.graph.datasets import load_dataset
from repro.graph.io import load_npz, save_npz
from repro.metrics.accuracy import max_error, precision_at_k
from repro.metrics.pooling import pooled_precision

DECAY = 0.6


class TestEndToEndSmallDatasets:
    @pytest.mark.parametrize("key", ["GQ", "WV"])
    def test_exactsim_matches_power_method_on_dataset(self, key):
        graph = load_dataset(key)
        oracle = PowerMethod(graph, decay=DECAY).preprocess()
        source = int(select_query_nodes(graph, 1, seed=1)[0])
        result = exact_single_source(graph, source, epsilon=1e-2, seed=5,
                                     max_total_samples=100_000)
        assert max_error(result.scores, oracle.matrix[source]) <= 1e-2
        assert precision_at_k(result.scores, oracle.matrix[source], 50,
                              exclude=source) >= 0.95

    def test_all_registered_small_datasets_load_and_answer_queries(self):
        for key in ("GQ", "HT", "WV", "HP"):
            graph = load_dataset(key)
            result = exact_single_source(graph, int(select_query_nodes(graph, 1, seed=2)[0]),
                                         epsilon=5e-2, seed=2, max_total_samples=20_000)
            assert result.scores.shape == (graph.num_nodes,)
            assert np.all(result.scores >= 0.0)


class TestCrossAlgorithmAgreement:
    def test_all_methods_agree_on_top_neighbours(self, collab_graph, collab_simrank):
        """Every algorithm should place mostly true top-10 nodes in its top-10."""
        source = 7
        truth = collab_simrank[source]
        algorithms = {
            "exactsim": ExactSim(collab_graph, ExactSimConfig(
                epsilon=1e-2, seed=3, max_total_samples=60_000)).single_source(source).scores,
            "parsim": ParSim(collab_graph, iterations=15).single_source(source).scores,
            "linearization": LinearizationSimRank(
                collab_graph, samples_per_node=500, seed=3).single_source(source).scores,
            "prsim": PRSim(collab_graph, epsilon=1e-2, hub_fraction=0.15,
                           seed=3).single_source(source).scores,
            "mc": MonteCarloSimRank(collab_graph, walks_per_node=300, walk_length=10,
                                    seed=3).single_source(source).scores,
            "probesim": ProbeSim(collab_graph, num_walks=600, seed=3).single_source(source).scores,
        }
        # Pure Monte-Carlo estimates are granular (multiples of 1/walks), so MC
        # resolves fewer of the closely-spaced top-10 scores than the rest.
        minimum_precision = {"mc": 0.2}
        for name, scores in algorithms.items():
            precision = precision_at_k(scores, truth, 10, exclude=source)
            threshold = minimum_precision.get(name, 0.5)
            assert precision >= threshold, f"{name} precision@10 too low: {precision}"
        # ExactSim should be at least as precise as every baseline.
        exact_precision = precision_at_k(algorithms["exactsim"], truth, 10, exclude=source)
        assert exact_precision >= max(
            precision_at_k(scores, truth, 10, exclude=source)
            for name, scores in algorithms.items() if name != "exactsim") - 1e-9

    def test_pooling_ranks_exactsim_highest(self, collab_graph, collab_simrank):
        source = 11
        k = 10
        exact = ExactSim(collab_graph, ExactSimConfig(
            epsilon=1e-2, seed=5, max_total_samples=60_000)).top_k(source, k)
        noisy = MonteCarloSimRank(collab_graph, walks_per_node=30, walk_length=8,
                                  seed=5).top_k(source, k)
        oracle = lambda s, t: float(collab_simrank[s, t])
        evaluation = pooled_precision(source, {"exactsim": exact, "mc": noisy}, k, oracle)
        assert evaluation.precisions["exactsim"] >= evaluation.precisions["mc"]


class TestPersistenceRoundTrip:
    def test_graph_round_trip_preserves_query_results(self, tmp_path, collab_graph):
        path = tmp_path / "graph.npz"
        save_npz(collab_graph, path)
        reloaded = load_npz(path)
        config = ExactSimConfig(epsilon=5e-2, seed=9, max_total_samples=20_000)
        original = ExactSim(collab_graph, config).single_source(3)
        repeated = ExactSim(reloaded, config).single_source(3)
        assert np.array_equal(original.scores, repeated.scores)


class TestExperimentPipeline:
    def test_figure_driver_on_registered_dataset(self):
        settings = ExperimentSettings(num_queries=1, top_k=10, time_budget_seconds=60, seed=3)
        series = fig_error_vs_query_time("GQ", methods=["exactsim", "parsim"],
                                         settings=settings,
                                         grids={"exactsim": (1e-1,), "parsim": (5,)})
        table = format_series_table(series)
        assert "GQ" in table
        assert "exactsim" in table and "parsim" in table
        for entry in series:
            assert entry.dataset == "GQ"
            assert len(entry.points) == 1
